//===- encodings/Encodings.h - Section 5 domain reductions ------*- C++ -*-===//
///
/// \file
/// The term transformations of Section 5, which reduce richer lattices to
/// the logical product of linear arithmetic and a single unary
/// uninterpreted function F:
///
///  * Commutative functions (5.1):
///       M(G_i(t1, t2)) = F(i + M(t1) + M(t2))
///    The sum makes the encoding invariant under argument swap, so
///    commutativity becomes a theorem of the target theory; injectivity of
///    the index i keeps distinct G_i apart (Claim 2).
///
///  * Arity reduction (5.2):
///       M(G_i^a(t1, ..., ta)) = F(i + 2^1 M(t1) + ... + 2^a M(ta))
///    with indices spaced so that distinct symbols cannot collide.
///
/// A program transformer rewrites every assignment, assumption and
/// assertion so a program over the richer signature can be analyzed with
/// the stock affine >< uf product.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_ENCODINGS_ENCODINGS_H
#define CAI_ENCODINGS_ENCODINGS_H

#include "ir/Program.h"

#include <map>

namespace cai {

/// Rewrites terms over user function symbols into terms over one unary
/// uninterpreted function plus linear arithmetic.
class TermEncoder {
public:
  enum class Scheme : uint8_t {
    Commutative,    ///< Section 5.1; binary symbols only.
    ArityReduction, ///< Section 5.2; any arity.
  };

  TermEncoder(TermContext &Ctx, Scheme S,
              const std::string &TargetFunction = "$enc")
      : Ctx(Ctx), S(S), F(Ctx.getFunction(TargetFunction, 1)) {}

  /// The single unary function all encodings target.
  Symbol target() const { return F; }

  /// The index assigned to \p G (assigned deterministically on first use).
  int64_t indexOf(Symbol G);

  /// M(T).  Arithmetic structure passes through unchanged; applications of
  /// non-arithmetic symbols are encoded.  Asserts on arity 0 or, for the
  /// commutative scheme, arity != 2.
  Term encode(Term T);

  Atom encode(const Atom &A);
  Conjunction encode(const Conjunction &E);

  /// Rewrites every action and assertion of \p P.
  Program encode(const Program &P);

private:
  TermContext &Ctx;
  Scheme S;
  Symbol F;
  std::map<Symbol, int64_t> Indices;
  int64_t NextIndex = 1;
};

} // namespace cai

#endif // CAI_ENCODINGS_ENCODINGS_H
