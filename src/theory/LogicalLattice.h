//===- theory/LogicalLattice.h - The abstract-domain interface --*- C++ -*-===//
///
/// \file
/// The LogicalLattice interface: an abstract domain whose elements are
/// finite conjunctions of atomic facts over some theory, ordered by
/// implication (Definition 1 of the paper).  Every domain in this library
/// implements it -- the Karr affine domain, the polyhedra domain, the
/// uninterpreted-function domain, parity, sign, lists -- and so do the
/// product combinators, which is what lets products nest.
///
/// The interface carries exactly the operators the paper's combination
/// algorithms need: join (J_L), existential quantification (Q_L),
/// entailment (the partial order), implied variable equalities (VE_T),
/// Alternate_T, widening, and the theory-signature queries used by
/// purification.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_THEORY_LOGICALLATTICE_H
#define CAI_THEORY_LOGICALLATTICE_H

#include "term/Conjunction.h"

#include <optional>
#include <string>
#include <utility>

namespace cai {

/// An abstract domain over conjunctions of atomic facts.
///
/// Elements are Conjunction values.  The empty conjunction is top and
/// Conjunction::bottom() is bottom.  Implementations must accept elements
/// containing var = var equality atoms (equality logic belongs to every
/// theory) and should treat maximal subterms outside their signature as
/// opaque indeterminates so they remain sound when handed impure input.
class LogicalLattice {
public:
  explicit LogicalLattice(TermContext &Ctx) : Ctx(Ctx) {}
  virtual ~LogicalLattice();

  TermContext &context() const { return Ctx; }

  /// Short human-readable domain name ("affine", "uf", "affine*uf", ...).
  virtual std::string name() const = 0;

  /// \name Theory signature (used by purification)
  /// @{

  /// True if this theory's signature contains function symbol \p S.
  virtual bool ownsFunction(Symbol S) const = 0;
  /// True if this theory's signature contains predicate symbol \p S.
  /// Equality is shared by every theory and need not be claimed here.
  virtual bool ownsPredicate(Symbol S) const = 0;
  /// True if numerals (and the arithmetic symbols + and *) belong to this
  /// theory.
  virtual bool ownsNumerals() const = 0;

  /// @}
  /// \name Lattice operations
  /// @{

  /// Least upper bound J_L (Definition 3).
  virtual Conjunction join(const Conjunction &A,
                           const Conjunction &B) const = 0;

  /// Existential quantification Q_L (Definition 4): the strongest element
  /// implied by \p E that mentions none of \p Vars.
  virtual Conjunction existQuant(const Conjunction &E,
                                 const std::vector<Term> &Vars) const = 0;

  /// True if \p E implies the atomic fact \p A in this theory.
  virtual bool entails(const Conjunction &E, const Atom &A) const = 0;

  /// True if \p E is unsatisfiable in this theory.
  virtual bool isUnsat(const Conjunction &E) const = 0;

  /// VE_T: all variable equalities x = y implied by \p E, as canonical
  /// pairs (no duplicates, x->representative form is implementation
  /// defined but must cover the full equivalence).
  virtual std::vector<std::pair<Term, Term>>
  impliedVarEqualities(const Conjunction &E) const = 0;

  /// Alternate_T: a term t with E => Var = t whose variables avoid
  /// \p Avoid and Var itself, or nullopt.
  virtual std::optional<Term>
  alternate(const Conjunction &E, Term Var,
            const std::vector<Term> &Avoid) const = 0;

  /// Batched Alternate_T used by QSaturation: finds definitions for as
  /// many of \p Targets as possible where every returned term avoids ALL
  /// of \p Targets.  May be weaker than iterating alternate with a
  /// shrinking avoid set (the caller loops to a fixpoint), but domains
  /// can implement it with a single canonicalization pass instead of one
  /// per variable.  The default delegates to alternate.
  virtual std::vector<std::pair<Term, Term>>
  alternateBatch(const Conjunction &E, const std::vector<Term> &Targets) const;

  /// Widening. The default is join, which is correct for finite-height
  /// domains (affine, uf over a fixed term depth); infinite-height domains
  /// (polyhedra) override it.
  virtual Conjunction widen(const Conjunction &Old,
                            const Conjunction &New) const;

  /// Greatest lower bound M_L: conjunction, with bottom detection.
  Conjunction meet(const Conjunction &A, const Conjunction &B) const;

  /// Convenience: E entails every atom of \p C.
  bool entailsAll(const Conjunction &E, const Conjunction &C) const;

  /// Convenience: mutual entailment (semantic lattice equality).
  bool equivalent(const Conjunction &A, const Conjunction &B) const;

  /// @}

private:
  TermContext &Ctx;
};

} // namespace cai

#endif // CAI_THEORY_LOGICALLATTICE_H
