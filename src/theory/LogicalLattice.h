//===- theory/LogicalLattice.h - The abstract-domain interface --*- C++ -*-===//
///
/// \file
/// The LogicalLattice interface: an abstract domain whose elements are
/// finite conjunctions of atomic facts over some theory, ordered by
/// implication (Definition 1 of the paper).  Every domain in this library
/// implements it -- the Karr affine domain, the polyhedra domain, the
/// uninterpreted-function domain, parity, sign, lists -- and so do the
/// product combinators, which is what lets products nest.
///
/// The interface carries exactly the operators the paper's combination
/// algorithms need: join (J_L), existential quantification (Q_L),
/// entailment (the partial order), implied variable equalities (VE_T),
/// Alternate_T, widening, and the theory-signature queries used by
/// purification.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_THEORY_LOGICALLATTICE_H
#define CAI_THEORY_LOGICALLATTICE_H

#include "support/QueryCache.h"
#include "term/Conjunction.h"

#include <optional>
#include <string>
#include <utility>

namespace cai {

/// Aggregated memoization / combination counters of one lattice tree
/// (a product recurses into its components).  The analyzer snapshots these
/// before and after a run and reports the delta.
struct LatticeStats {
  unsigned long CacheHits = 0;
  unsigned long CacheMisses = 0;
  unsigned long SaturationRounds = 0;

  LatticeStats operator-(const LatticeStats &RHS) const {
    LatticeStats D;
    D.CacheHits = CacheHits - RHS.CacheHits;
    D.CacheMisses = CacheMisses - RHS.CacheMisses;
    D.SaturationRounds = SaturationRounds - RHS.SaturationRounds;
    return D;
  }
};

namespace detail {

/// Memoization key for binary conjunction operations (join, widen, meet,
/// mutual entailment).  Stores both operands in full; the hash buckets by
/// fingerprint and equality is exact, so collisions are harmless.
struct ConjPairKey {
  Conjunction A, B;
  bool operator==(const ConjPairKey &RHS) const {
    return A == RHS.A && B == RHS.B;
  }
};
struct ConjPairHash {
  size_t operator()(const ConjPairKey &K) const {
    return static_cast<size_t>(K.A.fingerprint() * 0x9e3779b97f4a7c15ull ^
                               K.B.fingerprint());
  }
};

/// Memoization key for per-atom entailment queries.
struct ConjAtomKey {
  Conjunction E;
  Atom A;
  bool operator==(const ConjAtomKey &RHS) const {
    return A == RHS.A && E == RHS.E;
  }
};
struct ConjAtomHash {
  size_t operator()(const ConjAtomKey &K) const {
    return static_cast<size_t>(K.E.fingerprint() * 0x9e3779b97f4a7c15ull ^
                               K.A.hash());
  }
};

/// Memoization key for existential quantification (conjunction + the
/// id-ordered variable list being eliminated).
struct QuantKey {
  Conjunction E;
  std::vector<Term> Vars;
  bool operator==(const QuantKey &RHS) const {
    return Vars == RHS.Vars && E == RHS.E;
  }
};
struct QuantHash {
  size_t operator()(const QuantKey &K) const {
    uint64_t H = K.E.fingerprint();
    for (Term V : K.Vars)
      H = H * 0x100000001b3ull ^ V->id();
    return static_cast<size_t>(H);
  }
};

} // namespace detail

/// An abstract domain over conjunctions of atomic facts.
///
/// Elements are Conjunction values.  The empty conjunction is top and
/// Conjunction::bottom() is bottom.  Implementations must accept elements
/// containing var = var equality atoms (equality logic belongs to every
/// theory) and should treat maximal subterms outside their signature as
/// opaque indeterminates so they remain sound when handed impure input.
class LogicalLattice {
public:
  explicit LogicalLattice(TermContext &Ctx) : Ctx(Ctx) {}
  virtual ~LogicalLattice();

  TermContext &context() const { return Ctx; }

  /// Short human-readable domain name ("affine", "uf", "affine*uf", ...).
  virtual std::string name() const = 0;

  /// \name Theory signature (used by purification)
  /// @{

  /// True if this theory's signature contains function symbol \p S.
  virtual bool ownsFunction(Symbol S) const = 0;
  /// True if this theory's signature contains predicate symbol \p S.
  /// Equality is shared by every theory and need not be claimed here.
  virtual bool ownsPredicate(Symbol S) const = 0;
  /// True if numerals (and the arithmetic symbols + and *) belong to this
  /// theory.
  virtual bool ownsNumerals() const = 0;

  /// @}
  /// \name Lattice operations
  /// @{

  /// Least upper bound J_L (Definition 3).
  virtual Conjunction join(const Conjunction &A,
                           const Conjunction &B) const = 0;

  /// Existential quantification Q_L (Definition 4): the strongest element
  /// implied by \p E that mentions none of \p Vars.
  virtual Conjunction existQuant(const Conjunction &E,
                                 const std::vector<Term> &Vars) const = 0;

  /// True if \p E implies the atomic fact \p A in this theory.
  virtual bool entails(const Conjunction &E, const Atom &A) const = 0;

  /// True if \p E is unsatisfiable in this theory.
  virtual bool isUnsat(const Conjunction &E) const = 0;

  /// VE_T: all variable equalities x = y implied by \p E, as canonical
  /// pairs (no duplicates, x->representative form is implementation
  /// defined but must cover the full equivalence).
  virtual std::vector<std::pair<Term, Term>>
  impliedVarEqualities(const Conjunction &E) const = 0;

  /// Alternate_T: a term t with E => Var = t whose variables avoid
  /// \p Avoid and Var itself, or nullopt.
  virtual std::optional<Term>
  alternate(const Conjunction &E, Term Var,
            const std::vector<Term> &Avoid) const = 0;

  /// Batched Alternate_T used by QSaturation: finds definitions for as
  /// many of \p Targets as possible where every returned term avoids ALL
  /// of \p Targets.  May be weaker than iterating alternate with a
  /// shrinking avoid set (the caller loops to a fixpoint), but domains
  /// can implement it with a single canonicalization pass instead of one
  /// per variable.  The default delegates to alternate.
  virtual std::vector<std::pair<Term, Term>>
  alternateBatch(const Conjunction &E, const std::vector<Term> &Targets) const;

  /// Widening. The default is join, which is correct for finite-height
  /// domains (affine, uf over a fixed term depth); infinite-height domains
  /// (polyhedra) override it.
  virtual Conjunction widen(const Conjunction &Old,
                            const Conjunction &New) const;

  /// Greatest lower bound M_L: conjunction, with bottom detection.
  /// Virtual so decorators (check/CheckedLattice.h) can intercept it; the
  /// default is right for every concrete domain.
  virtual Conjunction meet(const Conjunction &A, const Conjunction &B) const;

  /// Convenience: E entails every atom of \p C.
  bool entailsAll(const Conjunction &E, const Conjunction &C) const;

  /// Convenience: mutual entailment (semantic lattice equality).
  bool equivalent(const Conjunction &A, const Conjunction &B) const;

  /// @}
  /// \name Memoized entry points
  ///
  /// Non-virtual wrappers over the virtual operations above that cache
  /// results keyed on the operands' canonical fingerprints.  The fixpoint
  /// engine and the product combinators route their calls through these;
  /// identical queries across fixpoint iterations become O(1) lookups.
  /// With memoization disabled (setMemoization(false)) every wrapper
  /// forwards to the virtual operation unconditionally -- the
  /// cache-equivalence test asserts bit-for-bit identical analysis results
  /// either way.
  /// @{

  Conjunction joinCached(const Conjunction &A, const Conjunction &B) const;
  Conjunction widenCached(const Conjunction &Old, const Conjunction &New) const;
  Conjunction meetCached(const Conjunction &A, const Conjunction &B) const;
  Conjunction existQuantCached(const Conjunction &E,
                               const std::vector<Term> &Vars) const;
  bool entailsCached(const Conjunction &E, const Atom &A) const;
  bool isUnsatCached(const Conjunction &E) const;
  bool entailsAllCached(const Conjunction &E, const Conjunction &C) const;
  std::vector<std::pair<Term, Term>>
  impliedVarEqualitiesCached(const Conjunction &E) const;

  /// Enables or disables memoization for this lattice; products propagate
  /// to their components.  Const because products hold const component
  /// references and the caches are observation-invisible (mutable).
  virtual void setMemoization(bool Enabled) const { MemoEnabled = Enabled; }
  bool memoizationEnabled() const { return MemoEnabled; }

  /// Accumulates this lattice's counters into \p S; products recurse into
  /// their components.
  virtual void collectStats(LatticeStats &S) const;

  /// Name of the innermost component domain responsible for the atom \p A
  /// -- the one whose theory owns A's predicate and function symbols.
  /// Leaves return name(); products dispatch on symbol ownership and
  /// recurse, answering name() for genuinely mixed or purely-shared
  /// (equality-only) facts.  The precision-provenance recorder
  /// (obs/Provenance.h) uses this to attribute a dropped conjunct to the
  /// domain that failed to keep it.
  virtual std::string attributeAtom(const Atom &) const { return name(); }

  /// Snapshot convenience for delta reporting.
  LatticeStats statsSnapshot() const {
    LatticeStats S;
    collectStats(S);
    return S;
  }

  /// @}

private:
  TermContext &Ctx;

  mutable bool MemoEnabled = true;
  mutable QueryCache<detail::ConjPairKey, Conjunction, detail::ConjPairHash>
      JoinCache, WidenCache, MeetCache;
  mutable QueryCache<detail::ConjPairKey, bool, detail::ConjPairHash>
      EntailAllCache;
  mutable QueryCache<detail::ConjAtomKey, bool, detail::ConjAtomHash>
      EntailCache;
  mutable QueryCache<Conjunction, bool, ConjunctionHash> UnsatCache;
  mutable QueryCache<detail::QuantKey, Conjunction, detail::QuantHash>
      QuantCache;
  mutable QueryCache<Conjunction, std::vector<std::pair<Term, Term>>,
                     ConjunctionHash>
      VarEqCache;
};

/// Shared attributeAtom implementation for the product combinators: tallies
/// which component theory owns the atom's predicate and function symbols
/// and recurses into the sole owner, or returns \p SharedName for mixed
/// facts and pure variable equalities (which belong to every theory).
std::string attributeProductAtom(const TermContext &Ctx,
                                 const LogicalLattice &L1,
                                 const LogicalLattice &L2, const Atom &A,
                                 const std::string &SharedName);

} // namespace cai

#endif // CAI_THEORY_LOGICALLATTICE_H
