//===- theory/Entailment.cpp - Combined-theory entailment ------------------===//

#include "theory/Entailment.h"

#include "theory/NelsonOppen.h"
#include "theory/Purify.h"

using namespace cai;

bool cai::combinedEntails(TermContext &Ctx, const LogicalLattice &L1,
                          const LogicalLattice &L2, const Conjunction &E,
                          const Atom &F) {
  if (E.isBottom())
    return true;
  if (F.isTrivial(Ctx))
    return true;

  // Purify E and the queried fact in one pass so F's alien terms reuse E's
  // naming; the definitional atoms introduced for F's aliens are a
  // conservative extension of E and sound to assume on the left.
  Purifier P(Ctx, L1, L2);
  for (const Atom &A : E.atoms()) {
    auto [S, Pure] = P.purifyAtom(A);
    P.addToSide(S, Pure);
  }
  auto [FSide, FPure] = P.purifyAtom(F);
  if (FSide == Purifier::Side::Dropped)
    return false; // Neither theory can even express the fact.

  SaturationResult Sat =
      noSaturate(Ctx, L1, L2, P.side1(), P.side2());
  if (Sat.Bottom)
    return true;

  switch (FSide) {
  case Purifier::Side::One:
    return L1.entails(Sat.Side1, FPure);
  case Purifier::Side::Two:
    return L2.entails(Sat.Side2, FPure);
  case Purifier::Side::Both:
    return L1.entails(Sat.Side1, FPure) || L2.entails(Sat.Side2, FPure);
  case Purifier::Side::Dropped:
    break;
  }
  return false;
}

bool cai::combinedIsUnsat(TermContext &Ctx, const LogicalLattice &L1,
                          const LogicalLattice &L2, const Conjunction &E) {
  if (E.isBottom())
    return true;
  PurifyResult P = purify(Ctx, L1, L2, E);
  SaturationResult Sat = noSaturate(Ctx, L1, L2, P.Side1, P.Side2);
  return Sat.Bottom;
}
