//===- theory/NelsonOppen.h - Equality propagation ---------------*- C++ -*-===//
///
/// \file
/// NOSaturation_{T1,T2} (Section 2): repeatedly exchanges implied variable
/// equalities between two pure conjunctions until a fixed point.  For
/// convex, stably infinite, disjoint theories this makes each side
/// individually complete for its pure consequences (Property 1).
///
//===----------------------------------------------------------------------===//

#ifndef CAI_THEORY_NELSONOPPEN_H
#define CAI_THEORY_NELSONOPPEN_H

#include "theory/LogicalLattice.h"

namespace cai {

/// Result of saturation: the two strengthened sides, or bottom if either
/// side became unsatisfiable.
struct SaturationResult {
  Conjunction Side1;
  Conjunction Side2;
  bool Bottom = false;
  /// Number of propagation rounds performed (diagnostic; used by the
  /// Nelson-Oppen benchmark).
  unsigned Rounds = 0;
};

/// NOSaturation_{T1,T2}(E1, E2).
SaturationResult noSaturate(TermContext &Ctx, const LogicalLattice &L1,
                            const LogicalLattice &L2, Conjunction E1,
                            Conjunction E2);

} // namespace cai

#endif // CAI_THEORY_NELSONOPPEN_H
