//===- theory/Purify.cpp - Nelson-Oppen purification ----------------------===//

#include "theory/Purify.h"

#include <algorithm>

using namespace cai;

namespace {

/// Which theory owns a function application's top symbol.
enum class Owner { First, Second, Neither };

Owner ownerOfApp(const TermContext &Ctx, const LogicalLattice &L1,
                 const LogicalLattice &L2, Term T) {
  assert(T->isApp() && "not an application");
  Symbol S = T->symbol();
  bool Arith = Ctx.info(S).Arithmetic;
  if (Arith ? L1.ownsNumerals() : L1.ownsFunction(S))
    return Owner::First;
  if (Arith ? L2.ownsNumerals() : L2.ownsFunction(S))
    return Owner::Second;
  return Owner::Neither;
}

/// True if \p T uses only variables, numerals and arithmetic symbols.
bool isArithPure(const TermContext &Ctx, Term T) {
  switch (T->kind()) {
  case TermKind::Variable:
  case TermKind::Number:
    return true;
  case TermKind::App:
    break;
  }
  if (!Ctx.info(T->symbol()).Arithmetic)
    return false;
  for (Term Arg : T->args())
    if (!isArithPure(Ctx, Arg))
      return false;
  return true;
}

} // namespace

bool Purifier::ownedByFirst(Term T) const {
  switch (T->kind()) {
  case TermKind::Variable:
    return true; // Variables are shared; callers treat this as "either".
  case TermKind::Number:
    if (L1.ownsNumerals())
      return true;
    return !L2.ownsNumerals();
  case TermKind::App:
    return ownerOfApp(Ctx, L1, L2, T) != Owner::Second;
  }
  assert(false && "unknown term kind");
  return true;
}

Term Purifier::nameAlien(Term Alien, bool AlienIsFirst) {
  auto It = NameOf.find(Alien);
  if (It != NameOf.end())
    return It->second;
  Term V = Ctx.freshVar("a");
  NameOf.emplace(Alien, V);
  Defs.emplace(V, Alien);
  Fresh.push_back(V);
  Atom Def = Atom::mkEq(Ctx, V, Alien);
  (AlienIsFirst ? E1 : E2).add(Def);
  return V;
}

Term Purifier::purifyTerm(Term T, bool WantFirst) {
  switch (T->kind()) {
  case TermKind::Variable:
    return T;
  case TermKind::Number: {
    const LogicalLattice &Here = WantFirst ? L1 : L2;
    const LogicalLattice &There = WantFirst ? L2 : L1;
    if (Here.ownsNumerals() || !There.ownsNumerals())
      return T; // Owned here, or an opaque shared constant.
    return nameAlien(T, !WantFirst);
  }
  case TermKind::App:
    break;
  }

  Owner O = ownerOfApp(Ctx, L1, L2, T);
  if (O == Owner::Neither) {
    // A symbol neither theory understands: havoc it with an undefined
    // fresh variable (sound: the variable is unconstrained).
    Term V = Ctx.freshVar("h");
    Fresh.push_back(V);
    return V;
  }
  bool IsFirst = O == Owner::First;
  // Rebuild the node with arguments purified in this node's theory.
  std::vector<Term> Args;
  Args.reserve(T->args().size());
  for (Term Arg : T->args())
    Args.push_back(purifyTerm(Arg, IsFirst));
  Term Pure;
  if (T->symbol() == Ctx.addSymbol()) {
    Pure = Ctx.mkNum(0);
    for (Term Arg : Args)
      Pure = Ctx.mkAdd(Pure, Arg);
  } else if (T->symbol() == Ctx.mulSymbol() && Args[0]->isNumber()) {
    Pure = Ctx.mkMul(Args[0]->number(), Args[1]);
  } else {
    Pure = Ctx.mkApp(T->symbol(), std::move(Args));
  }
  if (IsFirst == WantFirst)
    return Pure;
  return nameAlien(Pure, IsFirst);
}

std::pair<Purifier::Side, Atom> Purifier::purifyAtom(const Atom &A) {
  Symbol Pred = A.predicate();
  bool IsEq = Pred == Ctx.eqSymbol();

  // Decide the owning side.
  Side S;
  if (!IsEq && L1.ownsPredicate(Pred)) {
    S = Side::One;
  } else if (!IsEq && L2.ownsPredicate(Pred)) {
    S = Side::Two;
  } else if (!IsEq) {
    return {Side::Dropped, A};
  } else {
    // Equality: dispatch on the argument structure.
    Term Lhs = A.lhs(), Rhs = A.rhs();
    // Non-disjoint signatures (both theories own arithmetic, like the
    // Figure 8 parity/sign pair): a purely arithmetic equality belongs to
    // both sides, and sharing it is what the example relies on.
    if (L1.ownsNumerals() && L2.ownsNumerals() && isArithPure(Ctx, Lhs) &&
        isArithPure(Ctx, Rhs))
      return {Side::Both, A};
    auto SideOfApp = [&](Term T) -> std::optional<Side> {
      switch (ownerOfApp(Ctx, L1, L2, T)) {
      case Owner::First:
        return Side::One;
      case Owner::Second:
        return Side::Two;
      case Owner::Neither:
        return std::nullopt;
      }
      return std::nullopt;
    };
    if (Lhs->isApp()) {
      std::optional<Side> OS = SideOfApp(Lhs);
      if (!OS)
        return {Side::Dropped, A};
      S = *OS;
    } else if (Rhs->isApp()) {
      std::optional<Side> OS = SideOfApp(Rhs);
      if (!OS)
        return {Side::Dropped, A};
      S = *OS;
    } else if (Lhs->isNumber() || Rhs->isNumber()) {
      if (L1.ownsNumerals())
        S = Side::One;
      else if (L2.ownsNumerals())
        S = Side::Two;
      else
        S = Side::One; // Opaque constants; either side can hold the fact.
    } else {
      S = Side::Both; // x = y belongs to every theory.
    }
  }

  if (S == Side::Both)
    return {S, A};

  bool WantFirst = S == Side::One;
  std::vector<Term> Args;
  Args.reserve(A.args().size());
  for (Term Arg : A.args())
    Args.push_back(purifyTerm(Arg, WantFirst));
  Atom Pure = IsEq ? Atom::mkEq(Ctx, Args[0], Args[1])
                   : Atom(Pred, std::move(Args));
  return {S, Pure};
}

void Purifier::addToSide(Side S, const Atom &A) {
  switch (S) {
  case Side::One:
    E1.add(A);
    break;
  case Side::Two:
    E2.add(A);
    break;
  case Side::Both:
    E1.add(A);
    E2.add(A);
    break;
  case Side::Dropped:
    break;
  }
}

PurifyResult cai::purify(TermContext &Ctx, const LogicalLattice &L1,
                         const LogicalLattice &L2, const Conjunction &E) {
  PurifyResult Result;
  if (E.isBottom()) {
    Result.Side1 = Conjunction::bottom();
    Result.Side2 = Conjunction::bottom();
    return Result;
  }
  Purifier P(Ctx, L1, L2);
  for (const Atom &A : E.atoms()) {
    auto [S, Pure] = P.purifyAtom(A);
    P.addToSide(S, Pure);
  }
  Result.FreshVars = P.freshVars();
  Result.Side1 = P.side1();
  Result.Side2 = P.side2();
  Result.Definitions = P.definitions();
  return Result;
}

namespace {

void collectAliensInTerm(const TermContext &Ctx, const LogicalLattice &L1,
                         const LogicalLattice &L2, Term T, bool InFirst,
                         std::vector<Term> &Out) {
  switch (T->kind()) {
  case TermKind::Variable:
    return;
  case TermKind::Number: {
    const LogicalLattice &Here = InFirst ? L1 : L2;
    const LogicalLattice &There = InFirst ? L2 : L1;
    if (!Here.ownsNumerals() && There.ownsNumerals())
      Out.push_back(T);
    return;
  }
  case TermKind::App:
    break;
  }
  Owner O = ownerOfApp(Ctx, L1, L2, T);
  bool IsFirst = O != Owner::Second;
  if (O != Owner::Neither && IsFirst != InFirst)
    Out.push_back(T);
  for (Term Arg : T->args())
    collectAliensInTerm(Ctx, L1, L2, Arg, IsFirst, Out);
}

} // namespace

std::vector<Term> cai::alienTerms(TermContext &Ctx, const LogicalLattice &L1,
                                  const LogicalLattice &L2,
                                  const Conjunction &E) {
  std::vector<Term> Out;
  if (E.isBottom())
    return Out;
  Purifier P(Ctx, L1, L2);
  for (const Atom &A : E.atoms()) {
    // Recompute the owning side the same way purifyAtom does, then walk
    // the argument terms in that context.
    Symbol Pred = A.predicate();
    bool InFirst;
    if (Pred != Ctx.eqSymbol()) {
      if (L1.ownsPredicate(Pred))
        InFirst = true;
      else if (L2.ownsPredicate(Pred))
        InFirst = false;
      else
        continue;
    } else {
      Term Lhs = A.lhs(), Rhs = A.rhs();
      if (Lhs->isApp())
        InFirst = P.ownedByFirst(Lhs);
      else if (Rhs->isApp())
        InFirst = P.ownedByFirst(Rhs);
      else if (Lhs->isNumber() || Rhs->isNumber())
        InFirst = P.ownedByFirst(Lhs->isNumber() ? Lhs : Rhs);
      else
        continue;
    }
    for (Term Arg : A.args())
      collectAliensInTerm(Ctx, L1, L2, Arg, InFirst, Out);
  }
  std::sort(Out.begin(), Out.end(), TermStructLess());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}
