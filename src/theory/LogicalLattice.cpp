//===- theory/LogicalLattice.cpp - The abstract-domain interface ----------===//

#include "theory/LogicalLattice.h"

using namespace cai;

LogicalLattice::~LogicalLattice() = default;

Conjunction LogicalLattice::widen(const Conjunction &Old,
                                  const Conjunction &New) const {
  return join(Old, New);
}

std::vector<std::pair<Term, Term>>
LogicalLattice::alternateBatch(const Conjunction &E,
                               const std::vector<Term> &Targets) const {
  std::vector<std::pair<Term, Term>> Out;
  for (Term Y : Targets) {
    std::vector<Term> Avoid;
    for (Term Z : Targets)
      if (Z != Y)
        Avoid.push_back(Z);
    if (std::optional<Term> T = alternate(E, Y, Avoid)) {
      // The contract requires avoidance of *all* targets including those
      // already defined this batch; alternate's per-variable avoid set
      // covers exactly that here.
      Out.emplace_back(Y, *T);
    }
  }
  return Out;
}

Conjunction LogicalLattice::meet(const Conjunction &A,
                                 const Conjunction &B) const {
  Conjunction Result = A.meet(B);
  if (!Result.isBottom() && isUnsatCached(Result))
    return Conjunction::bottom();
  return Result;
}

Conjunction LogicalLattice::joinCached(const Conjunction &A,
                                       const Conjunction &B) const {
  if (!MemoEnabled)
    return join(A, B);
  detail::ConjPairKey K{A, B};
  if (const Conjunction *Hit = JoinCache.lookup(K))
    return *Hit;
  Conjunction R = join(A, B);
  JoinCache.insert(std::move(K), R);
  return R;
}

Conjunction LogicalLattice::widenCached(const Conjunction &Old,
                                        const Conjunction &New) const {
  if (!MemoEnabled)
    return widen(Old, New);
  detail::ConjPairKey K{Old, New};
  if (const Conjunction *Hit = WidenCache.lookup(K))
    return *Hit;
  Conjunction R = widen(Old, New);
  WidenCache.insert(std::move(K), R);
  return R;
}

Conjunction LogicalLattice::meetCached(const Conjunction &A,
                                       const Conjunction &B) const {
  if (!MemoEnabled)
    return meet(A, B);
  detail::ConjPairKey K{A, B};
  if (const Conjunction *Hit = MeetCache.lookup(K))
    return *Hit;
  Conjunction R = meet(A, B);
  MeetCache.insert(std::move(K), R);
  return R;
}

Conjunction
LogicalLattice::existQuantCached(const Conjunction &E,
                                 const std::vector<Term> &Vars) const {
  if (!MemoEnabled)
    return existQuant(E, Vars);
  detail::QuantKey K{E, Vars};
  if (const Conjunction *Hit = QuantCache.lookup(K))
    return *Hit;
  Conjunction R = existQuant(E, Vars);
  QuantCache.insert(std::move(K), R);
  return R;
}

bool LogicalLattice::entailsCached(const Conjunction &E, const Atom &A) const {
  if (!MemoEnabled)
    return entails(E, A);
  detail::ConjAtomKey K{E, A};
  if (const bool *Hit = EntailCache.lookup(K))
    return *Hit;
  bool R = entails(E, A);
  EntailCache.insert(std::move(K), R);
  return R;
}

bool LogicalLattice::isUnsatCached(const Conjunction &E) const {
  if (!MemoEnabled)
    return isUnsat(E);
  if (const bool *Hit = UnsatCache.lookup(E))
    return *Hit;
  bool R = isUnsat(E);
  UnsatCache.insert(E, R);
  return R;
}

bool LogicalLattice::entailsAllCached(const Conjunction &E,
                                      const Conjunction &C) const {
  if (!MemoEnabled)
    return entailsAll(E, C);
  detail::ConjPairKey K{E, C};
  if (const bool *Hit = EntailAllCache.lookup(K))
    return *Hit;
  // Recompute through the per-atom cache so partially overlapping queries
  // (same E, different C sharing atoms) still share work.
  bool R;
  if (E.isBottom())
    R = true;
  else if (C.isBottom())
    R = isUnsatCached(E);
  else {
    R = true;
    for (const Atom &A : C.atoms())
      if (!entailsCached(E, A)) {
        R = false;
        break;
      }
  }
  EntailAllCache.insert(std::move(K), R);
  return R;
}

std::vector<std::pair<Term, Term>>
LogicalLattice::impliedVarEqualitiesCached(const Conjunction &E) const {
  if (!MemoEnabled)
    return impliedVarEqualities(E);
  if (const auto *Hit = VarEqCache.lookup(E))
    return *Hit;
  std::vector<std::pair<Term, Term>> R = impliedVarEqualities(E);
  VarEqCache.insert(E, R);
  return R;
}

void LogicalLattice::collectStats(LatticeStats &S) const {
  for (const QueryCacheCounters &C :
       {JoinCache.counters(), WidenCache.counters(), MeetCache.counters(),
        EntailAllCache.counters(), EntailCache.counters(),
        UnsatCache.counters(), QuantCache.counters(), VarEqCache.counters()}) {
    S.CacheHits += C.Hits;
    S.CacheMisses += C.Misses;
  }
}

bool LogicalLattice::entailsAll(const Conjunction &E,
                                const Conjunction &C) const {
  if (E.isBottom())
    return true;
  if (C.isBottom())
    return isUnsat(E);
  for (const Atom &A : C.atoms())
    if (!entails(E, A))
      return false;
  return true;
}

bool LogicalLattice::equivalent(const Conjunction &A,
                                const Conjunction &B) const {
  return entailsAll(A, B) && entailsAll(B, A);
}

namespace {

/// Counts the symbols of \p T that \p L's theory owns (numerals and
/// arithmetic applications count against ownsNumerals) alongside the total
/// symbol count.  Variables are free in every theory and not counted.
void tallyOwnership(const TermContext &Ctx, const LogicalLattice &L, Term T,
                    unsigned &Owned, unsigned &Total) {
  switch (T->kind()) {
  case TermKind::Variable:
    return;
  case TermKind::Number:
    ++Total;
    Owned += L.ownsNumerals();
    return;
  case TermKind::App:
    break;
  }
  ++Total;
  Owned += Ctx.info(T->symbol()).Arithmetic ? L.ownsNumerals()
                                            : L.ownsFunction(T->symbol());
  for (Term Arg : T->args())
    tallyOwnership(Ctx, L, Arg, Owned, Total);
}

} // namespace

std::string cai::attributeProductAtom(const TermContext &Ctx,
                                      const LogicalLattice &L1,
                                      const LogicalLattice &L2, const Atom &A,
                                      const std::string &SharedName) {
  unsigned Total = 0, Owned1 = 0, Owned2 = 0;
  if (!A.isEq(Ctx)) {
    ++Total;
    Owned1 += L1.ownsPredicate(A.predicate());
    Owned2 += L2.ownsPredicate(A.predicate());
  }
  for (Term Arg : A.args()) {
    unsigned Ignored = 0;
    tallyOwnership(Ctx, L1, Arg, Owned1, Ignored);
    tallyOwnership(Ctx, L2, Arg, Owned2, Total);
  }
  if (Total == 0)
    return SharedName; // Pure variable equality: shared by every theory.
  if (Owned1 == Total && Owned2 < Total)
    return L1.attributeAtom(A);
  if (Owned2 == Total && Owned1 < Total)
    return L2.attributeAtom(A);
  return SharedName;
}
