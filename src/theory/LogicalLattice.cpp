//===- theory/LogicalLattice.cpp - The abstract-domain interface ----------===//

#include "theory/LogicalLattice.h"

using namespace cai;

LogicalLattice::~LogicalLattice() = default;

Conjunction LogicalLattice::widen(const Conjunction &Old,
                                  const Conjunction &New) const {
  return join(Old, New);
}

std::vector<std::pair<Term, Term>>
LogicalLattice::alternateBatch(const Conjunction &E,
                               const std::vector<Term> &Targets) const {
  std::vector<std::pair<Term, Term>> Out;
  for (Term Y : Targets) {
    std::vector<Term> Avoid;
    for (Term Z : Targets)
      if (Z != Y)
        Avoid.push_back(Z);
    if (std::optional<Term> T = alternate(E, Y, Avoid)) {
      // The contract requires avoidance of *all* targets including those
      // already defined this batch; alternate's per-variable avoid set
      // covers exactly that here.
      Out.emplace_back(Y, *T);
    }
  }
  return Out;
}

Conjunction LogicalLattice::meet(const Conjunction &A,
                                 const Conjunction &B) const {
  Conjunction Result = A.meet(B);
  if (!Result.isBottom() && isUnsat(Result))
    return Conjunction::bottom();
  return Result;
}

bool LogicalLattice::entailsAll(const Conjunction &E,
                                const Conjunction &C) const {
  if (E.isBottom())
    return true;
  if (C.isBottom())
    return isUnsat(E);
  for (const Atom &A : C.atoms())
    if (!entails(E, A))
      return false;
  return true;
}

bool LogicalLattice::equivalent(const Conjunction &A,
                                const Conjunction &B) const {
  return entailsAll(A, B) && entailsAll(B, A);
}
