//===- theory/NelsonOppen.cpp - Equality propagation -----------------------===//

#include "theory/NelsonOppen.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <unordered_map>

using namespace cai;

namespace {

/// Union-find over variables, tracking which equalities are already known
/// so each propagation round only forwards new merges.
class VarUnionFind {
public:
  Term find(Term V) {
    auto It = Parent.find(V);
    if (It == Parent.end()) {
      Parent.emplace(V, V);
      return V;
    }
    // Iterative two-pass find with full path compression: the scaling
    // workloads produce equality chains long enough that the recursive
    // version risked exhausting the stack.
    Term Root = It->second;
    while (true) {
      Term Next = Parent.find(Root)->second;
      if (Next == Root)
        break;
      Root = Next;
    }
    Term Cur = V;
    while (Cur != Root) {
      auto CurIt = Parent.find(Cur);
      Term Next = CurIt->second;
      CurIt->second = Root;
      Cur = Next;
    }
    return Root;
  }

  /// Returns true if this union merged two previously-distinct classes.
  bool merge(Term A, Term B) {
    Term RA = find(A), RB = find(B);
    if (RA == RB)
      return false;
    // Deterministic representative: structurally smaller term wins.
    if (structuralCompare(RB, RA) < 0)
      std::swap(RA, RB);
    Parent[RB] = RA;
    return true;
  }

private:
  std::unordered_map<Term, Term> Parent;
};

} // namespace

SaturationResult cai::noSaturate(TermContext &Ctx, const LogicalLattice &L1,
                                 const LogicalLattice &L2, Conjunction E1,
                                 Conjunction E2) {
  CAI_TRACE_SPAN("no.saturate", "saturation");
  CAI_METRIC_INC("nelson_oppen.saturations");
  CAI_METRIC_TIME("nelson_oppen.saturate_us");
  SaturationResult Result;
  if (E1.isBottom() || E2.isBottom() || L1.isUnsatCached(E1) ||
      L2.isUnsatCached(E2)) {
    Result.Bottom = true;
    Result.Side1 = Conjunction::bottom();
    Result.Side2 = Conjunction::bottom();
    return Result;
  }

  // Union-find of equalities already exchanged: rounds continue only while
  // classes keep merging, which bounds them by the variable count.
  VarUnionFind Known;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Result.Rounds;
    CAI_TRACE_SPAN("no.round", "saturation");
    CAI_METRIC_INC("nelson_oppen.rounds");

    for (int SideIdx = 0; SideIdx < 2; ++SideIdx) {
      const LogicalLattice &Src = SideIdx == 0 ? L1 : L2;
      const LogicalLattice &Dst = SideIdx == 0 ? L2 : L1;
      Conjunction &SrcE = SideIdx == 0 ? E1 : E2;
      Conjunction &DstE = SideIdx == 0 ? E2 : E1;

      std::vector<std::pair<Term, Term>> Eqs =
          Src.impliedVarEqualitiesCached(SrcE);
      bool Forwarded = false;
      for (const auto &[X, Y] : Eqs) {
        // Forward only merges of previously-distinct classes; equalities
        // already exchanged (in either direction) are silently skipped,
        // which is what bounds the number of rounds by the variable count.
        if (!Known.merge(X, Y))
          continue;
        Atom Eq = Atom::mkEq(Ctx, X, Y);
        if (!DstE.contains(Eq)) {
          DstE.add(Eq);
          Forwarded = true;
        }
      }
      if (Forwarded) {
        Changed = true;
        if (Dst.isUnsatCached(DstE)) {
          Result.Bottom = true;
          Result.Side1 = Conjunction::bottom();
          Result.Side2 = Conjunction::bottom();
          return Result;
        }
      }
    }
  }

  Result.Side1 = std::move(E1);
  Result.Side2 = std::move(E2);
  return Result;
}
