//===- theory/Entailment.h - Combined-theory entailment ----------*- C++ -*-===//
///
/// \file
/// Entailment of atomic facts over a combined theory, by purification +
/// NO-saturation + dispatch to the owning component (justified by
/// Property 1 of the paper).  This is the decision procedure the assertion
/// checker uses on the product domains.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_THEORY_ENTAILMENT_H
#define CAI_THEORY_ENTAILMENT_H

#include "theory/LogicalLattice.h"

namespace cai {

/// True if \p E implies \p F over the combined theory of L1 and L2.
/// \p F may be a mixed atom; its alien terms are named with the same
/// purification pass as \p E so the definitional extension is shared.
bool combinedEntails(TermContext &Ctx, const LogicalLattice &L1,
                     const LogicalLattice &L2, const Conjunction &E,
                     const Atom &F);

/// True if \p E is unsatisfiable over the combined theory of L1 and L2
/// (for convex, stably infinite, disjoint theories this is decided exactly
/// by purify + saturate + per-side checks).
bool combinedIsUnsat(TermContext &Ctx, const LogicalLattice &L1,
                     const LogicalLattice &L2, const Conjunction &E);

} // namespace cai

#endif // CAI_THEORY_ENTAILMENT_H
