//===- theory/Purify.h - Nelson-Oppen purification ---------------*- C++ -*-===//
///
/// \file
/// Purification (the Purify_{T1,T2} operator of Section 2): splits a
/// conjunction of atomic facts over a combined theory into two pure
/// conjunctions plus fresh-variable definitions for the alien terms.
/// Also provides AlienTerms_{T1,T2}.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_THEORY_PURIFY_H
#define CAI_THEORY_PURIFY_H

#include "theory/LogicalLattice.h"

#include <unordered_map>

namespace cai {

/// Result of purifying one conjunction: hV, E1, E2i in the paper's
/// notation, plus the definition map for the fresh variables.
struct PurifyResult {
  /// Fresh variables introduced, in introduction order.
  std::vector<Term> FreshVars;
  /// Pure facts of theory 1 (plus shared var = var equalities).
  Conjunction Side1;
  /// Pure facts of theory 2 (plus shared var = var equalities).
  Conjunction Side2;
  /// Fresh variable -> the (purified) term it names.
  std::unordered_map<Term, Term> Definitions;
};

/// Incremental purifier.  Atoms can be fed one at a time (used by the
/// combined entailment check, which purifies E and then the queried fact
/// with the same alien-term naming); pure facts and definitions accumulate
/// in the two sides.
class Purifier {
public:
  Purifier(TermContext &Ctx, const LogicalLattice &L1,
           const LogicalLattice &L2)
      : Ctx(Ctx), L1(L1), L2(L2) {}

  /// Which side a purified atom lands on.
  enum class Side : uint8_t { Both, One, Two, Dropped };

  /// Purifies \p A, appending alien-term definitions to the sides.
  /// Returns the pure atom and its side; atoms whose predicate neither
  /// theory owns are Dropped (the sound over-approximation the paper's
  /// conditional-node rule prescribes).
  std::pair<Side, Atom> purifyAtom(const Atom &A);

  /// Adds a purified atom directly to the given side (used to re-inject
  /// var = var equalities discovered elsewhere).
  void addToSide(Side S, const Atom &A);

  Conjunction &side1() { return E1; }
  Conjunction &side2() { return E2; }
  const std::vector<Term> &freshVars() const { return Fresh; }
  const std::unordered_map<Term, Term> &definitions() const { return Defs; }

  /// True if theory 1 owns the top symbol of \p T; numbers go to whichever
  /// side owns numerals (side 1 wins ties).
  bool ownedByFirst(Term T) const;

private:
  /// Rewrites \p T to a pure term of the side owning its top symbol,
  /// naming alien subterms with fresh variables.  \p WantFirst says which
  /// theory the surrounding context belongs to.
  Term purifyTerm(Term T, bool WantFirst);
  /// Returns the fresh variable naming \p Alien (which must already be
  /// pure for the side owning it), creating it and its definition atom on
  /// first use.
  Term nameAlien(Term Alien, bool AlienIsFirst);

  TermContext &Ctx;
  const LogicalLattice &L1;
  const LogicalLattice &L2;
  Conjunction E1, E2;
  std::vector<Term> Fresh;
  std::unordered_map<Term, Term> Defs;     // fresh var -> pure alien term
  std::unordered_map<Term, Term> NameOf;   // pure alien term -> fresh var
};

/// Purifies a whole conjunction: the paper's Purify_{T1,T2}(E).
/// A bottom input yields bottom on both sides.
PurifyResult purify(TermContext &Ctx, const LogicalLattice &L1,
                    const LogicalLattice &L2, const Conjunction &E);

/// AlienTerms_{T1,T2}(E): the set of alien terms occurring in \p E,
/// deduplicated, ordered by term id.
std::vector<Term> alienTerms(TermContext &Ctx, const LogicalLattice &L1,
                             const LogicalLattice &L2, const Conjunction &E);

} // namespace cai

#endif // CAI_THEORY_PURIFY_H
