//===- interp/ConcreteInterp.cpp - Reference concrete interpreter ----------===//

#include "interp/ConcreteInterp.h"

#include "term/Printer.h"

using namespace cai;
using namespace cai::interp;

ConcreteModel::ConcreteModel(TermContext &Ctx, uint64_t Seed)
    : Ctx(Ctx), Rng(Seed ^ 0xa5a5a5a55a5a5a5aull) {}

Rational ConcreteModel::freshOpaque() {
  // 40 random bits offset far above ordinary program arithmetic.  Staying
  // in int64 range keeps BigInt on its small-value fast path.
  int64_t Base = int64_t(1) << 44;
  return Rational(Base + static_cast<int64_t>(Rng.next() >> 24));
}

Rational ConcreteModel::apply(Symbol S, const std::vector<Rational> &Args) {
  AppKey K{S.index(), Args};
  auto It = FnTable.find(K);
  if (It != FnTable.end())
    return It->second;
  Rational V = freshOpaque();
  FnTable.emplace(std::move(K), V);
  return V;
}

Rational ConcreteModel::evalTerm(Term T, const Env &E, bool &Ok) {
  switch (T->kind()) {
  case TermKind::Variable: {
    auto It = E.find(T);
    if (It == E.end()) {
      Ok = false;
      return Rational();
    }
    return It->second;
  }
  case TermKind::Number:
    return T->number();
  case TermKind::App:
    break;
  }

  std::vector<Rational> Args;
  Args.reserve(T->args().size());
  for (Term Arg : T->args())
    Args.push_back(evalTerm(Arg, E, Ok));
  if (!Ok)
    return Rational();

  Symbol S = T->symbol();
  if (S == Ctx.addSymbol()) {
    Rational Sum;
    for (const Rational &A : Args)
      Sum += A;
    return Sum;
  }
  if (S == Ctx.mulSymbol()) {
    Rational Prod = Rational::one();
    for (const Rational &A : Args)
      Prod *= A;
    return Prod;
  }

  const SymbolInfo &Info = Ctx.info(S);
  if (Info.Name == "cons" && Args.size() == 2) {
    std::pair<Rational, Rational> Parts{Args[0], Args[1]};
    auto It = PairByParts.find(Parts);
    if (It != PairByParts.end())
      return It->second;
    Rational Addr = freshOpaque();
    PairByParts.emplace(Parts, Addr);
    PartsByAddr.emplace(Addr, Parts);
    return Addr;
  }
  if ((Info.Name == "car" || Info.Name == "cdr") && Args.size() == 1) {
    auto It = PartsByAddr.find(Args[0]);
    if (It != PartsByAddr.end())
      return Info.Name == "car" ? It->second.first : It->second.second;
    return apply(S, Args); // Projection of a non-pair: uninterpreted.
  }
  if (Info.Name == "update" && Args.size() == 3) {
    AppKey K{S.index(), Args};
    auto It = UpdateByParts.find(K);
    if (It != UpdateByParts.end())
      return It->second;
    Rational Addr = freshOpaque();
    UpdateByParts.emplace(std::move(K), Addr);
    ArrayByAddr.emplace(Addr, ArrayNode{Args[0], Args[1], Args[2]});
    return Addr;
  }
  if (Info.Name == "select" && Args.size() == 2) {
    // Walk the overlay chain; equal index hits the written value, distinct
    // indices fall through to the base array.
    Rational Arr = Args[0];
    while (true) {
      auto It = ArrayByAddr.find(Arr);
      if (It == ArrayByAddr.end())
        return apply(S, {Arr, Args[1]});
      if (It->second.Index == Args[1])
        return It->second.Value;
      Arr = It->second.Base;
    }
  }
  return apply(S, Args);
}

bool ConcreteModel::evalAtom(const Atom &A, const Env &E, bool &Ok) {
  std::vector<Rational> Args;
  Args.reserve(A.args().size());
  for (Term Arg : A.args())
    Args.push_back(evalTerm(Arg, E, Ok));
  if (!Ok)
    return false;

  Symbol P = A.predicate();
  if (P == Ctx.eqSymbol())
    return Args[0] == Args[1];
  if (P == Ctx.leSymbol())
    return Args[0] <= Args[1];

  const SymbolInfo &Info = Ctx.info(P);
  auto IsEvenInteger = [](const Rational &V) {
    if (!V.isInteger())
      return false;
    const BigInt &N = V.numerator();
    return (N / BigInt(2)) * BigInt(2) == N;
  };
  if (Info.Name == "even" && Args.size() == 1)
    return IsEvenInteger(Args[0]);
  if (Info.Name == "odd" && Args.size() == 1)
    return Args[0].isInteger() && !IsEvenInteger(Args[0]);
  // The sign theory's integer semantics: positive(t) iff t >= 1,
  // negative(t) iff t <= -1 (see domains/sign/SignDomain.h).
  if (Info.Name == "positive" && Args.size() == 1)
    return Rational(1) <= Args[0];
  if (Info.Name == "negative" && Args.size() == 1)
    return Args[0] <= Rational(-1);

  // Foreign predicate: a random-but-consistent valuation is a model too.
  AppKey K{P.index(), Args};
  auto It = PredTable.find(K);
  if (It != PredTable.end())
    return It->second;
  bool V = (Rng.next() & 1) != 0;
  PredTable.emplace(std::move(K), V);
  return V;
}

bool ConcreteModel::evalCond(const Conjunction &C, const Env &E, bool &Ok) {
  if (C.isBottom())
    return false;
  for (const Atom &A : C.atoms())
    if (!evalAtom(A, E, Ok))
      return false;
  return true;
}

unsigned cai::interp::runTrace(TermContext &Ctx, const Program &P,
                               uint64_t Seed, const TraceOptions &Opts,
                               const TraceVisitor &Visit) {
  return runTrace(Ctx, P, Seed, Opts, Visit, EdgeVisitor());
}

unsigned cai::interp::runTrace(TermContext &Ctx, const Program &P,
                               uint64_t Seed, const TraceOptions &Opts,
                               const TraceVisitor &Visit,
                               const EdgeVisitor &VisitEdge) {
  if (P.numNodes() == 0)
    return 0;
  // Two independent streams: the model samples fresh valuations, the
  // walker resolves havocs and branch choices.  Interleaving one stream
  // between them would make a havoc value depend on how many F-terms were
  // evaluated before it -- needlessly fragile replay.
  ConcreteModel Model(Ctx, Seed);
  SplitMix64 Walk(Seed ^ 0x1234567890abcdefull);

  Env E;
  for (Term V : P.variables())
    E.emplace(V, Rational(Walk.intIn(Opts.HavocLo, Opts.HavocHi)));

  NodeId N = P.entry();
  unsigned Visits = 1;
  if (!Visit(N, E, Model))
    return Visits;

  const auto &Succs = P.successors();
  std::vector<size_t> Takeable;
  for (unsigned Step = 0; Step < Opts.MaxSteps; ++Step) {
    Takeable.clear();
    for (size_t EdgeIdx : Succs[N]) {
      const Action &Act = P.edges()[EdgeIdx].Act;
      if (Act.Kind == ActionKind::Assume) {
        bool Ok = true;
        if (!Model.evalCond(Act.Cond, E, Ok) || !Ok)
          continue;
      }
      Takeable.push_back(EdgeIdx);
    }
    if (Takeable.empty())
      break; // Exit node, or every branch's assumption is false.

    size_t ChosenIdx = Takeable[Walk.below(Takeable.size())];
    const Edge &Chosen = P.edges()[ChosenIdx];
    if (VisitEdge && !VisitEdge(ChosenIdx, E, Model))
      break;
    switch (Chosen.Act.Kind) {
    case ActionKind::Skip:
    case ActionKind::Assume:
      break;
    case ActionKind::Assign: {
      bool Ok = true;
      Rational V = Model.evalTerm(Chosen.Act.Value, E, Ok);
      // Program variables are all initialized at entry, so Ok can only be
      // cleared by a malformed Program built outside the parser; degrade
      // to havoc, which over-approximates any assignment.
      E[Chosen.Act.Var] =
          Ok ? V : Rational(Walk.intIn(Opts.HavocLo, Opts.HavocHi));
      break;
    }
    case ActionKind::Havoc:
      E[Chosen.Act.Var] = Rational(Walk.intIn(Opts.HavocLo, Opts.HavocHi));
      break;
    }
    N = Chosen.To;
    ++Visits;
    if (!Visit(N, E, Model))
      break;
  }
  return Visits;
}

std::string cai::interp::toString(const TermContext &Ctx, const Env &E) {
  std::string Out;
  for (const auto &[Var, Val] : E) {
    if (!Out.empty())
      Out += ", ";
    Out += cai::toString(Ctx, Var) + " = " + Val.toString();
  }
  return Out;
}
