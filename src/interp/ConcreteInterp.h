//===- interp/ConcreteInterp.h - Reference concrete interpreter -*- C++ -*-===//
///
/// \file
/// A reference concrete interpreter for the flowchart IR, the ground truth
/// the soundness oracle (interp/Oracle.h) compares abstract fixpoints
/// against.  A run is one random walk over the CFG under exact
/// Rational/BigInt semantics: havocs and non-deterministic branches are
/// resolved by a seeded RNG, and every theory symbol is interpreted by a
/// concrete first-order model built lazily per trace:
///
///   * arithmetic (+, scale)  -- exact rational arithmetic;
///   * uninterpreted functions -- a memoized fresh-value table, so F is a
///     genuine function (equal arguments, equal result) with no accidental
///     structure beyond what congruence demands;
///   * lists                   -- cons allocates an interned pair address,
///     car/cdr project it, satisfying car(cons(x,y)) = x exactly;
///   * arrays                  -- update allocates an overlay node,
///     select walks the overlay chain, satisfying read-over-write;
///   * theory predicates       -- even/odd/positive/negative evaluate with
///     the integer semantics the domains assume (positive(t) iff t >= 1),
///     foreign predicates get a memoized random-but-consistent valuation.
///
/// Every interpretation above is a legitimate model of the respective
/// theory, so any state reached concretely must satisfy every fact a sound
/// analysis attaches to its node -- which is exactly what the oracle
/// asserts.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_INTERP_CONCRETEINTERP_H
#define CAI_INTERP_CONCRETEINTERP_H

#include "ir/Program.h"

#include <functional>
#include <map>

namespace cai {
namespace interp {

/// SplitMix64: a tiny, platform-independent, seeded PRNG.  Deterministic
/// replay from the seed is the whole point (violations must reproduce), so
/// no std::random_device / implementation-defined distributions here.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : X(Seed) {}

  uint64_t next() {
    uint64_t Z = (X += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, N); N must be nonzero.
  uint64_t below(uint64_t N) { return next() % N; }

  /// Uniform in [Lo, Hi] (inclusive).
  int64_t intIn(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

private:
  uint64_t X;
};

/// A concrete environment: one exact value per program variable.
using Env = std::map<Term, Rational, TermStructLess>;

/// The lazily-built concrete model for one trace (function/list/array/
/// predicate valuations).  All values live in Q; structured values (pairs,
/// arrays) are represented by allocated "address" numerals kept in a range
/// far outside ordinary program arithmetic.
class ConcreteModel {
public:
  ConcreteModel(TermContext &Ctx, uint64_t Seed);

  /// Evaluates \p T under \p E.  A term mentioning a variable with no
  /// binding clears \p Ok (and the value is meaningless); \p Ok is never
  /// set back to true, so one flag can thread through a whole conjunction.
  Rational evalTerm(Term T, const Env &E, bool &Ok);

  /// Truth of one atomic fact under \p E; \p Ok as for evalTerm.
  bool evalAtom(const Atom &A, const Env &E, bool &Ok);

  /// Truth of a conjunction (bottom is false, top is true).
  bool evalCond(const Conjunction &C, const Env &E, bool &Ok);

private:
  /// The memoized uninterpreted-function fallback: fresh value per
  /// distinct (symbol, arguments) application.
  Rational apply(Symbol S, const std::vector<Rational> &Args);

  /// A fresh value from the address range (also used for opaque function
  /// results so distinct applications collide with ordinary arithmetic
  /// values only with negligible probability -- and even a collision is
  /// still a legitimate model, just a less discriminating one).
  Rational freshOpaque();

  TermContext &Ctx;
  SplitMix64 Rng;

  using AppKey = std::pair<uint32_t, std::vector<Rational>>;
  std::map<AppKey, Rational> FnTable;   ///< Uninterpreted applications.
  std::map<AppKey, bool> PredTable;     ///< Foreign predicate valuations.

  // Lists: cons interning plus the inverse projection.
  std::map<std::pair<Rational, Rational>, Rational> PairByParts;
  std::map<Rational, std::pair<Rational, Rational>> PartsByAddr;

  // Arrays: update overlays, walked by select.
  struct ArrayNode {
    Rational Base, Index, Value;
  };
  std::map<AppKey, Rational> UpdateByParts;
  std::map<Rational, ArrayNode> ArrayByAddr;
};

/// Shape of one concrete replay.
struct TraceOptions {
  unsigned MaxSteps = 256;  ///< Edge-step budget per trace.
  int64_t HavocLo = -8;     ///< Havoc values are integers in
  int64_t HavocHi = 8;      ///< [HavocLo, HavocHi].
};

/// Called at the entry node and after every edge step; return false to
/// stop the trace early.  The model is the trace's own: facts about
/// uninterpreted applications must be judged under the exact valuation the
/// execution used, so the oracle evaluates through this reference, never
/// through a second model.
using TraceVisitor = std::function<bool(NodeId, const Env &, ConcreteModel &)>;

/// Called for every edge the walk takes, with the edge's index into
/// Program::edges() and the environment *before* the edge's action is
/// applied; return false to stop the trace.  The lint soundness sweep uses
/// this to reconstruct which stores execute and which values are read.
using EdgeVisitor =
    std::function<bool(size_t /*EdgeIdx*/, const Env &, ConcreteModel &)>;

/// Replays one random walk over \p P: initializes every program variable
/// with a random integer (the concrete counterpart of the entry invariant
/// "top"), then repeatedly picks a uniformly random *takeable* outgoing
/// edge (an assume edge is takeable iff its condition holds in the current
/// state and model) until the walk blocks, exceeds the step budget, or the
/// visitor stops it.  Deterministic in \p Seed.  Returns the number of
/// node visits (>= 1 for a nonempty program).
unsigned runTrace(TermContext &Ctx, const Program &P, uint64_t Seed,
                  const TraceOptions &Opts, const TraceVisitor &Visit);

/// As above, additionally reporting each taken edge to \p VisitEdge (which
/// may be null).  The walk itself is identical for a given seed.
unsigned runTrace(TermContext &Ctx, const Program &P, uint64_t Seed,
                  const TraceOptions &Opts, const TraceVisitor &Visit,
                  const EdgeVisitor &VisitEdge);

/// Renders an environment as "x = 3, y = -1/2" (id-ordered, so output is
/// deterministic).
std::string toString(const TermContext &Ctx, const Env &E);

} // namespace interp
} // namespace cai

#endif // CAI_INTERP_CONCRETEINTERP_H
