//===- interp/ProgramGen.cpp - Seeded random .imp generator ----------------===//

#include "interp/ProgramGen.h"

#include "interp/ConcreteInterp.h"

using namespace cai;
using namespace cai::interp;

namespace {

class Generator {
public:
  explicit Generator(const GenOptions &Opts)
      : Opts(Opts), Rng(Opts.Seed ^ 0x632be59bd9b4e019ull) {}

  std::string run() {
    Out += "// generated: seed " + std::to_string(Opts.Seed) + "\n";
    // A couple of deterministic initializations so the analyzer has
    // non-trivial facts from the start; the rest stay havocked (the
    // concrete runner initializes every variable anyway).
    for (unsigned I = 0; I < Opts.Vars; ++I)
      if (Rng.below(2) == 0)
        line(var(I) + " := " + std::to_string(Rng.intIn(-4, 6)) + ";");
      else
        line(var(I) + " := *;");
    if (Opts.Arrays)
      line("mem := *;");
    statements(Opts.MaxStmts, 0);
    // End with one assertion-shaped fact per program so the entailment
    // path runs too (its verdict is irrelevant to the oracle).
    line("assert(" + atom() + ");");
    return std::move(Out);
  }

private:
  std::string var(unsigned I) { return std::string(1, char('a' + I % 26)); }
  std::string anyVar() { return var(unsigned(Rng.below(Opts.Vars))); }
  std::string num(int64_t Lo, int64_t Hi) {
    return std::to_string(Rng.intIn(Lo, Hi));
  }

  void line(const std::string &S) {
    Out.append(Indent, ' ');
    Out += S;
    Out += '\n';
  }

  /// "base + c" with the sign folded into the operator ("base - 2"), since
  /// the term grammar only allows a leading minus at expression start.
  std::string plusConst(const std::string &Base, int64_t C) {
    if (C < 0)
      return Base + " - " + std::to_string(-C);
    return Base + " + " + std::to_string(C);
  }

  std::string expr() {
    // The case list grows from the back so switching a knob off leaves
    // the surviving cases' dice unchanged.
    unsigned Cases = Opts.Functions ? (Opts.Arrays ? 9 : 8) : 5;
    switch (Rng.below(Cases)) {
    case 0:
      return num(-4, 8);
    case 1:
      return anyVar();
    case 2:
      return plusConst(anyVar(), Rng.intIn(-3, 3));
    case 3:
      return anyVar() + " + " + anyVar();
    case 4:
      return num(1, 3) + "*" + anyVar() + " - " + anyVar();
    case 5:
      return "F(" + fnArg(1) + ")";
    case 6:
      return "F(" + plusConst(anyVar(), Rng.intIn(-2, 2)) + ")";
    case 7:
      return "G(" + fnArg(1) + ", " + fnArg(1) + ")";
    default:
      return "select(mem, " + index() + ")";
    }
  }

  /// Array subscripts: a scalar variable, a small constant, or an affine
  /// offset -- the shapes the read-over-write rule can discharge when the
  /// numeric half proves index equality.
  std::string index() {
    switch (Rng.below(3)) {
    case 0:
      return anyVar();
    case 1:
      return num(0, 6);
    default:
      return plusConst(anyVar(), Rng.intIn(-2, 2));
    }
  }

  /// An argument of a function application already \p Depth levels deep:
  /// while the MaxFnDepth budget lasts it may be another application
  /// (yielding compositions like F(G(a, b)) and deeper towers), after
  /// that a scalar.
  std::string fnArg(unsigned Depth) {
    if (Depth < Opts.MaxFnDepth) {
      switch (Rng.below(4)) {
      case 0:
        return "F(" + fnArg(Depth + 1) + ")";
      case 1:
        return "G(" + fnArg(Depth + 1) + ", " + fnArg(Depth + 1) + ")";
      default:
        break; // Fall through to a scalar: towers stay sparse.
      }
    }
    return Rng.below(3) == 0 ? plusConst(anyVar(), Rng.intIn(-2, 2))
                             : anyVar();
  }

  std::string atom() {
    switch (Rng.below(Opts.TheoryPreds ? 7 : 5)) {
    case 0:
      return anyVar() + " <= " + num(-2, 10);
    case 1:
      return num(-4, 4) + " <= " + anyVar();
    case 2:
      return anyVar() + " <= " + anyVar();
    case 3:
      return anyVar() + " = " + num(-4, 8);
    case 4:
      return anyVar() + " = " + anyVar();
    case 5:
      return "even(" + anyVar() + ")";
    default:
      return "positive(" + anyVar() + ")";
    }
  }

  std::string cond() {
    uint64_t K = Rng.below(6);
    if (K < 2)
      return "*";
    if (K < 5)
      return atom();
    return "!(" + atom() + ")";
  }

  void statements(unsigned Budget, unsigned Depth) {
    while (Budget > 0) {
      unsigned Used = statement(Budget, Depth);
      Budget -= Used > Budget ? Budget : Used;
    }
  }

  /// Emits one statement; returns how much budget it consumed (compound
  /// statements charge for their bodies).
  unsigned statement(unsigned Budget, unsigned Depth) {
    bool CanNest = Depth < Opts.MaxDepth && Budget >= 3;
    // Array writes take the slot past the nesting cases (see expr() on
    // why new cases append): simple statements stay equally likely with
    // the knob off.
    unsigned Cases = CanNest ? 10 : 6;
    if (Opts.Arrays)
      ++Cases;
    uint64_t K = Rng.below(Cases);
    if (Opts.Arrays && K == Cases - 1) {
      std::string Val = Rng.below(2) == 0 ? anyVar() : num(-4, 8);
      line("mem := update(mem, " + index() + ", " + Val + ");");
      return 1;
    }
    switch (K) {
    case 0:
    case 1:
    case 2:
      line(anyVar() + " := " + expr() + ";");
      return 1;
    case 3:
      line(anyVar() + " := *;");
      return 1;
    case 4:
      line("assume(" + atom() + ");");
      return 1;
    case 5:
      line("assert(" + atom() + ");");
      return 1;
    case 6:
    case 7: { // if, sometimes with else
      unsigned Body = 1 + unsigned(Rng.below(Budget - 2));
      bool Else = Rng.below(2) == 0;
      unsigned ElseBody = Else && Budget - Body > 1
                              ? 1 + unsigned(Rng.below(Budget - Body - 1))
                              : 0;
      line("if (" + cond() + ") {");
      Indent += 2;
      statements(Body, Depth + 1);
      Indent -= 2;
      if (ElseBody > 0) {
        line("} else {");
        Indent += 2;
        statements(ElseBody, Depth + 1);
        Indent -= 2;
      }
      line("}");
      return 1 + Body + ElseBody;
    }
    default: { // while
      if (Loops >= Opts.MaxLoops) {
        line(anyVar() + " := " + expr() + ";");
        return 1;
      }
      ++Loops;
      unsigned Body = 1 + unsigned(Rng.below(Budget - 2));
      // Half the loops are the canonical counted shape (bounded counter,
      // increment first in the body) so narrowing has exits to refine; the
      // rest run on a random condition.
      if (Rng.below(2) == 0) {
        std::string V = anyVar();
        std::string Bound = num(2, 8);
        line(V + " := 0;");
        line("while (" + V + " <= " + Bound + ") {");
        Indent += 2;
        line(V + " := " + V + " + 1;");
        statements(Body, Depth + 1);
        Indent -= 2;
      } else {
        line("while (" + cond() + ") {");
        Indent += 2;
        statements(Body, Depth + 1);
        Indent -= 2;
      }
      line("}");
      return 2 + Body;
    }
    }
  }

  const GenOptions &Opts;
  SplitMix64 Rng;
  std::string Out;
  unsigned Indent = 0;
  unsigned Loops = 0;
};

} // namespace

std::string cai::interp::generateProgram(const GenOptions &Opts) {
  return Generator(Opts).run();
}
