//===- interp/ProgramGen.h - Seeded random .imp generator -------*- C++ -*-===//
///
/// \file
/// A seeded random generator of mini-language (.imp) programs, the input
/// half of the soundness self-audit: generated programs feed the analyzer
/// and the concrete-execution oracle (interp/Oracle.h) across every domain
/// spec x memoization mode, hunting for states a fixpoint fails to cover.
///
/// Output is concrete syntax (not a Program) on purpose: every trial also
/// exercises the parser front end, and a failing program can be written to
/// disk verbatim and replayed with `cai-analyze --check`.
///
/// Shapes are deliberately small -- a few scalar variables, nesting depth
/// two, at most a couple of loops -- so the polyhedra product converges in
/// milliseconds and CI can afford hundreds of program x domain trials.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_INTERP_PROGRAMGEN_H
#define CAI_INTERP_PROGRAMGEN_H

#include <cstdint>
#include <string>

namespace cai {
namespace interp {

/// Shape knobs for one generated program.
struct GenOptions {
  uint64_t Seed = 1;
  unsigned Vars = 3;      ///< Scalar variables a, b, c, ...
  unsigned MaxStmts = 10; ///< Top-level statement budget.
  unsigned MaxDepth = 2;  ///< if/while nesting depth.
  unsigned MaxLoops = 2;  ///< Total while loops per program.
  bool Functions = true;  ///< Allow F(...)/G(...,...) applications.
  bool TheoryPreds = true; ///< Allow even/positive atoms.
  /// Allow array reads and writes through a dedicated array variable:
  /// `mem := update(mem, i, v);` statements and `select(mem, i)` reads.
  /// The variable name ("mem") never collides with the scalar pool
  /// (single letters), so `mem` stays exclusively array-valued and the
  /// concrete runner's overlay semantics apply.  Off by default: seeded
  /// corpora generated before this knob existed stay byte-identical.
  bool Arrays = false;
  /// Nesting budget for function applications: 1 keeps arguments scalar
  /// (F(x), G(x, y)); 2 allows one composition level (F(G(a, b))); higher
  /// values build deeper towers.  Composed terms are the shapes the UF
  /// congruence machinery and the arity-reduction encoding care about, and
  /// the service's batch corpus generates them at depth 3.
  unsigned MaxFnDepth = 1;
};

/// Generates one program, deterministic in \p Opts (notably Seed).  The
/// result always parses (parser round-trip is asserted by interp_test).
std::string generateProgram(const GenOptions &Opts);

} // namespace interp
} // namespace cai

#endif // CAI_INTERP_PROGRAMGEN_H
