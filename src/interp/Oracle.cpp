//===- interp/Oracle.cpp - The differential soundness oracle ---------------===//

#include "interp/Oracle.h"

#include "obs/Metrics.h"
#include "term/Printer.h"

#include <set>

using namespace cai;
using namespace cai::interp;

std::string cai::interp::describe(const TermContext &Ctx,
                                  const OracleViolation &V) {
  std::string Out = "soundness violation at node " + std::to_string(V.Node) +
                    " (trace " + std::to_string(V.Trace) + ", seed " +
                    std::to_string(V.Seed) + ")\n";
  switch (V.K) {
  case OracleViolation::Kind::FalsifiedAtom:
    Out += "  invariant conjunct falsified: " + toString(Ctx, V.Fact) +
           "   [domain: " + V.Domain + "]\n";
    break;
  case OracleViolation::Kind::UnboundVariable:
    Out += "  invariant mentions a variable no concrete state binds "
           "(leaked by quantification): " +
           toString(Ctx, V.Fact) + "   [domain: " + V.Domain + "]\n";
    break;
  case OracleViolation::Kind::BottomReachable:
    Out += "  node is concretely reachable but its invariant is bottom\n";
    break;
  }
  Out += "  concrete state: " + V.State;
  return Out;
}

OracleReport cai::interp::checkSoundness(TermContext &Ctx, const Program &P,
                                         const AnalysisResult &R,
                                         const LogicalLattice &L,
                                         const OracleOptions &Opts) {
  OracleReport Report;
  // Dedup: a broken invariant conjunct falsifies on every trace; one
  // report per (node, atom) keeps the output readable.  ~0 marks the
  // bottom-reachable kind, which carries no atom.
  std::set<std::pair<NodeId, size_t>> Seen;

  TraceOptions TO;
  TO.MaxSteps = Opts.MaxSteps;
  TO.HavocLo = Opts.HavocLo;
  TO.HavocHi = Opts.HavocHi;

  for (unsigned T = 0; T < Opts.Traces; ++T) {
    ++Report.Traces;
    // Fresh seed per trace: distinct function valuations, havoc values and
    // branch resolutions each replay.
    uint64_t Seed = Opts.Seed * 0x9e3779b97f4a7c15ull + T + 1;

    auto Visit = [&](NodeId N, const Env &E, ConcreteModel &Model) -> bool {
      ++Report.StatesChecked;
      const Conjunction &Inv = R.Invariants[N];
      if (Inv.isBottom()) {
        if (Seen.emplace(N, ~size_t(0)).second) {
          OracleViolation V;
          V.K = OracleViolation::Kind::BottomReachable;
          V.Trace = T;
          V.Seed = Seed;
          V.Node = N;
          V.State = toString(Ctx, E);
          Report.Violations.push_back(std::move(V));
        }
        return Report.Violations.size() < Opts.MaxViolations;
      }
      for (const Atom &A : Inv.atoms()) {
        ++Report.AtomsChecked;
        bool Ok = true;
        bool Holds = Model.evalAtom(A, E, Ok);
        if (Ok && Holds)
          continue;
        if (!Seen.emplace(N, A.hash()).second)
          continue;
        OracleViolation V;
        V.K = Ok ? OracleViolation::Kind::FalsifiedAtom
                 : OracleViolation::Kind::UnboundVariable;
        V.Trace = T;
        V.Seed = Seed;
        V.Node = N;
        V.Fact = A;
        V.Domain = L.attributeAtom(A);
        V.State = toString(Ctx, E);
        Report.Violations.push_back(std::move(V));
        if (Report.Violations.size() >= Opts.MaxViolations)
          return false;
      }
      return true;
    };

    runTrace(Ctx, P, Seed, TO, Visit);
    if (Report.Violations.size() >= Opts.MaxViolations)
      break;
  }

  CAI_METRIC_ADD("check.oracle.traces", Report.Traces);
  CAI_METRIC_ADD("check.oracle.states", Report.StatesChecked);
  CAI_METRIC_ADD("check.oracle.atoms", Report.AtomsChecked);
  CAI_METRIC_ADD("check.oracle.violations", Report.Violations.size());
  return Report;
}
