//===- interp/Oracle.h - The differential soundness oracle ------*- C++ -*-===//
///
/// \file
/// The end-to-end soundness check behind `cai-analyze --check=oracle`:
/// replay the analyzed program N times under the reference concrete
/// interpreter (interp/ConcreteInterp.h) and assert that every concretely
/// reached state satisfies the abstract fixpoint invariant at its node --
/// the over-approximation guarantee of the paper's Theorems 3-5, checked
/// against real executions instead of algebraic laws on synthetic inputs.
///
/// Three violation kinds are distinguished: a concrete state falsifying an
/// invariant conjunct (an unsound transfer/join/widen/cache somewhere), an
/// invariant mentioning a variable that no concrete state binds (a
/// quantification that leaked an internal variable), and a concretely
/// reachable node whose invariant is bottom (dropped reachability).  Each
/// violation names the responsible component domain via
/// LogicalLattice::attributeAtom and carries the full concrete state and
/// trace seed, so it replays deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_INTERP_ORACLE_H
#define CAI_INTERP_ORACLE_H

#include "analysis/Analyzer.h"
#include "interp/ConcreteInterp.h"

namespace cai {
namespace interp {

/// Budget and seeding for one oracle sweep.
struct OracleOptions {
  uint64_t Seed = 1;        ///< Base seed; trace t runs with a mix of both.
  unsigned Traces = 32;     ///< Concrete replays.
  unsigned MaxSteps = 256;  ///< Edge-step budget per replay.
  unsigned MaxViolations = 8; ///< Stop collecting past this many.
  int64_t HavocLo = -8, HavocHi = 8; ///< Havoc value range.
};

/// One soundness violation.
struct OracleViolation {
  enum class Kind : uint8_t {
    FalsifiedAtom,   ///< State reaches Node but falsifies Fact.
    UnboundVariable, ///< Fact mentions a variable outside the program.
    BottomReachable, ///< Node reached concretely, invariant is bottom.
  };
  Kind K = Kind::FalsifiedAtom;
  unsigned Trace = 0; ///< Trace ordinal (seed derives from it).
  uint64_t Seed = 0;  ///< Exact runTrace seed for replay.
  NodeId Node = 0;
  Atom Fact;          ///< Valid for FalsifiedAtom/UnboundVariable.
  std::string Domain; ///< attributeAtom of the responsible component.
  std::string State;  ///< Rendered concrete environment.
};

/// The sweep's tally.
struct OracleReport {
  unsigned Traces = 0;
  unsigned long StatesChecked = 0;
  unsigned long AtomsChecked = 0;
  std::vector<OracleViolation> Violations;

  bool ok() const { return Violations.empty(); }
};

/// Renders one violation (multi-line, human-readable).
std::string describe(const TermContext &Ctx, const OracleViolation &V);

/// Replays \p P under Opts.Traces seeded random walks and checks every
/// visited (node, state) pair against \p R's invariants.  \p L is used
/// only to attribute a falsified conjunct to its component domain.
///
/// Precondition: \p R must come from a converged run of the analyzer over
/// exactly \p P (a truncated fixpoint under-approximates by design, so the
/// oracle would report meaningless violations).
OracleReport checkSoundness(TermContext &Ctx, const Program &P,
                            const AnalysisResult &R, const LogicalLattice &L,
                            const OracleOptions &Opts = {});

} // namespace interp
} // namespace cai

#endif // CAI_INTERP_ORACLE_H
