//===- obs/Trace.h - Scoped event tracing ------------------------*- C++ -*-===//
///
/// \file
/// A scoped event tracer that turns one analysis run into a Chrome
/// `trace_event` JSON artifact (load it in chrome://tracing or Perfetto).
/// The instrumented spans cover the phases the cost model of Section 4.4
/// cares about: WTO component iterations, edge transfers, joins and
/// widenings, Nelson-Oppen saturation rounds, simplex solves, and
/// congruence-closure propagation.
///
/// Cost discipline:
///  * tracer disabled (the default): every span macro is a single load and
///    branch on a global pointer -- the bench_fixpoint E15 ablation pins
///    the overhead under 2%;
///  * compiled out (-DCAI_DISABLE_OBS): the macros expand to nothing, for
///    builds that want the branch gone too;
///  * null sink: a Tracer constructed with Sink::Discard runs the full
///    instrumentation path but buffers no events, isolating the probe cost
///    from the JSON-buffer cost in the ablation.
///
/// The tracer is deliberately not thread-safe: one analysis runs on one
/// thread (see QueryCache.h for the same contract), and sharded analyses
/// get a tracer per shard.  Installation is therefore thread-local --
/// every worker of the analysis service installs its own shard tracer --
/// and each tracer asserts (debug builds keep assertions on) that all
/// recording happens on the thread that adopted it.  Shards share an
/// epoch and are merged deterministically on export by writeMergedJson,
/// which maps shard index I to trace thread id I+1.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_OBS_TRACE_H
#define CAI_OBS_TRACE_H

#include <cassert>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace cai {
namespace obs {

/// One key/value annotation on a span ("args" in the trace_event format).
struct TraceArg {
  const char *Key;
  std::string Value;
};

/// An in-memory trace_event recorder.  Spans are duration events (phase
/// "B"/"E"); instants are phase "i"; counters are phase "C".
class Tracer {
public:
  enum class Sink : uint8_t {
    Buffer,  ///< Record events for writeJson().
    Discard, ///< Run the probes, keep nothing (the E15 null sink).
  };

  explicit Tracer(Sink S = Sink::Buffer)
      : Mode(S), Owner(std::this_thread::get_id()) {
    Start = std::chrono::steady_clock::now();
  }
  /// Shard constructor: timestamps are relative to the shared \p Epoch so
  /// merged shard timelines align.
  Tracer(Sink S, std::chrono::steady_clock::time_point Epoch)
      : Mode(S), Start(Epoch), Owner(std::this_thread::get_id()) {}

  /// The tracer installed on the calling thread, or nullptr when tracing
  /// is off.  Every probe site checks this once; the macros below do it
  /// for you.
  static Tracer *active() { return Active; }

  /// Installs \p T as the calling thread's tracer (nullptr disables
  /// tracing on this thread).  The caller keeps ownership and must
  /// uninstall before destroying it.
  static void install(Tracer *T) { Active = T; }

  /// Rebinds the ownership assertion to the calling thread.  A scheduler
  /// constructs shard tracers up front, then each worker adopts its shard
  /// before installing it.  Only legal while no span is open.
  void adoptByCurrentThread() {
    assert(Depth == 0 && "cannot adopt a tracer with open spans");
    Owner = std::this_thread::get_id();
  }

  void begin(const char *Name, const char *Cat) {
    assertOwned();
    ++Depth;
    if (Mode == Sink::Discard)
      return;
    Events.push_back({'B', Name, Cat, nowUs(), {}, 0});
  }
  void begin(const char *Name, const char *Cat, std::vector<TraceArg> Args) {
    assertOwned();
    ++Depth;
    if (Mode == Sink::Discard)
      return;
    Events.push_back({'B', Name, Cat, nowUs(), std::move(Args), 0});
  }
  void end() {
    assertOwned();
    if (Depth == 0)
      return; // Unbalanced end; keep the buffer well-formed.
    --Depth;
    if (Mode == Sink::Discard)
      return;
    Events.push_back({'E', nullptr, nullptr, nowUs(), {}, 0});
  }
  void instant(const char *Name, const char *Cat,
               std::vector<TraceArg> Args = {}) {
    assertOwned();
    if (Mode == Sink::Discard)
      return;
    Events.push_back({'i', Name, Cat, nowUs(), std::move(Args), 0});
  }
  void counter(const char *Name, const char *Cat, double Value) {
    assertOwned();
    if (Mode == Sink::Discard)
      return;
    Events.push_back({'C', Name, Cat, nowUs(), {}, Value});
  }

  size_t numEvents() const { return Events.size(); }
  /// Current span nesting depth (open B events); 0 when balanced.
  unsigned depth() const { return Depth; }
  void clear() {
    assertOwned();
    Events.clear();
    Depth = 0;
    Start = std::chrono::steady_clock::now();
  }

  /// Writes the buffered events as a Chrome trace_event JSON object
  /// ({"traceEvents": [...], "displayTimeUnit": "ms"}).  Unclosed spans
  /// are closed at the final timestamp so the artifact always loads.
  void writeJson(std::ostream &OS) const;

  /// Merges \p Shards into one Chrome trace_event JSON object: shard I's
  /// events carry "tid" I+1, so the viewer renders one lane per shard.
  /// The shard order is the caller's vector order, making the merged
  /// artifact deterministic for a fixed shard assignment.  Callers must
  /// have joined the shard threads first (this reads the buffers).
  static void writeMergedJson(std::ostream &OS,
                              const std::vector<const Tracer *> &Shards);

private:
  struct Event {
    char Ph;
    const char *Name; ///< Null for 'E' events.
    const char *Cat;
    uint64_t TsUs;
    std::vector<TraceArg> Args;
    double Value; ///< Counter value for 'C' events.
  };

  uint64_t nowUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
  }

  /// Cross-thread use of one shard corrupts the span nesting silently;
  /// fail loudly instead (assertions stay on in this project's optimized
  /// builds, see the top-level CMakeLists).
  void assertOwned() const {
    assert(Owner == std::this_thread::get_id() &&
           "Tracer used from a thread other than its owner; shard tracers "
           "must be adopted (adoptByCurrentThread) before use");
  }

  /// Emits this tracer's events (plus synthetic closers for unfinished
  /// spans) into an open traceEvents array; \p First tracks the comma
  /// state across shards.
  void writeEvents(std::ostream &OS, unsigned Tid, bool &First) const;

  Sink Mode;
  unsigned Depth = 0;
  std::vector<Event> Events;
  std::chrono::steady_clock::time_point Start;
  std::thread::id Owner;
  static thread_local Tracer *Active;
};

/// RAII span: opens on construction if a tracer is installed, closes on
/// destruction.  Capturing the tracer pointer at construction keeps the
/// pair balanced even if the tracer is swapped mid-scope.
class TraceSpan {
public:
  TraceSpan(const char *Name, const char *Cat) : T(Tracer::active()) {
    if (T)
      T->begin(Name, Cat);
  }
  TraceSpan(const char *Name, const char *Cat, std::vector<TraceArg> Args)
      : T(Tracer::active()) {
    if (T)
      T->begin(Name, Cat, std::move(Args));
  }
  ~TraceSpan() {
    if (T)
      T->end();
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  Tracer *T;
};

} // namespace obs
} // namespace cai

#ifdef CAI_DISABLE_OBS
#define CAI_TRACE_SPAN(Name, Cat)
#define CAI_TRACE_SPAN_ARGS(Name, Cat, ...)
#define CAI_TRACE_INSTANT(Name, Cat, ...)
#else
#ifndef CAI_OBS_CONCAT
#define CAI_OBS_CONCAT_(A, B) A##B
#define CAI_OBS_CONCAT(A, B) CAI_OBS_CONCAT_(A, B)
#endif
/// Opens a span for the rest of the enclosing scope.  Name and Cat must be
/// string literals (they are stored by pointer).
#define CAI_TRACE_SPAN(Name, Cat)                                              \
  ::cai::obs::TraceSpan CAI_OBS_CONCAT(CaiTraceSpan_, __COUNTER__)(Name, Cat)
/// Same, with {"key", value} annotations; the argument list is only
/// evaluated when a tracer is installed.
#define CAI_TRACE_SPAN_ARGS(Name, Cat, ...)                                    \
  ::cai::obs::TraceSpan CAI_OBS_CONCAT(CaiTraceSpan_, __COUNTER__)(            \
      Name, Cat,                                                               \
      ::cai::obs::Tracer::active()                                             \
          ? ::std::vector<::cai::obs::TraceArg>{__VA_ARGS__}                   \
          : ::std::vector<::cai::obs::TraceArg>{})
#define CAI_TRACE_INSTANT(Name, Cat, ...)                                      \
  do {                                                                         \
    if (::cai::obs::Tracer *CaiT = ::cai::obs::Tracer::active())               \
      CaiT->instant(Name, Cat, {__VA_ARGS__});                                 \
  } while (0)
#endif

#endif // CAI_OBS_TRACE_H
