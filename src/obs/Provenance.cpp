//===- obs/Provenance.cpp - Precision-loss provenance ----------------------===//

#include "obs/Provenance.h"

#include "term/Printer.h"
#include "theory/LogicalLattice.h"

#include <set>
#include <sstream>

using namespace cai;
using namespace cai::obs;

thread_local ProvenanceRecorder *ProvenanceRecorder::Active = nullptr;

const char *ProvenanceRecorder::stepName(Step S) {
  switch (S) {
  case Step::Join:
    return "join";
  case Step::Widen:
    return "widening";
  case Step::Narrow:
    return "narrowing meet";
  case Step::ComponentJoin:
    return "component join";
  case Step::ComponentWiden:
    return "component widening";
  case Step::Quantification:
    return "dummy elimination (existQuant)";
  }
  return "?";
}

bool ProvenanceRecorder::recorded(const Atom &A) const {
  // The same (node, update) context covers at most a handful of events, all
  // at the tail of the record.
  for (auto It = Events.rbegin(); It != Events.rend(); ++It) {
    if (It->Node != Cur.Node || It->Update != Cur.Update)
      return false;
    if (It->Lost == A)
      return true;
  }
  return false;
}

std::string ProvenanceRecorder::describe(const TermContext &Ctx,
                                         const LossEvent &E) const {
  std::ostringstream OS;
  OS << "node " << E.Node << ", update #" << E.Update << ": "
     << stepName(E.Kind) << " dropped '" << toString(Ctx, E.Lost) << "'"
     << " [domain: " << E.Domain << "]";
  if (E.SaturationRounds)
    OS << " (after " << E.SaturationRounds << " saturation rounds)";
  return OS.str();
}

std::string ProvenanceRecorder::explain(const TermContext &Ctx, unsigned Node,
                                        const Atom &Fact) const {
  if (Events.empty())
    return "";
  std::set<uint64_t> FactVars;
  std::vector<Term> Vars;
  Fact.collectVars(Vars);
  for (Term V : Vars)
    FactVars.insert(V->id());
  auto Shares = [&](const LossEvent &E) {
    std::vector<Term> EV;
    E.Lost.collectVars(EV);
    for (Term V : EV)
      if (FactVars.count(V->id()))
        return true;
    return false;
  };
  std::ostringstream OS;
  bool Any = false;
  // Losses at the assertion's own node first, then related losses upstream.
  for (int Pass = 0; Pass < 2; ++Pass) {
    for (const LossEvent &E : Events) {
      bool AtNode = E.Node == Node;
      if ((Pass == 0) != AtNode || !Shares(E))
        continue;
      OS << "  " << describe(Ctx, E) << "\n";
      Any = true;
    }
  }
  if (!Any)
    for (const LossEvent &E : Events)
      OS << "  " << describe(Ctx, E) << "\n";
  return OS.str();
}

void cai::obs::diffStep(const LogicalLattice &L, const Conjunction &Before,
                        const Conjunction *Incoming,
                        const Conjunction &After) {
  ProvenanceRecorder *R = ProvenanceRecorder::active();
  if (!R || !R->context().Valid)
    return;
  const ProvenanceRecorder::Context &Cur = R->context();
  std::set<Atom> Seen;
  auto Check = [&](const Conjunction &Input) {
    if (Input.isBottom())
      return;
    for (const Atom &A : Input.atoms()) {
      if (!Seen.insert(A).second || R->recorded(A))
        continue;
      if (!After.isBottom() && L.entailsCached(After, A))
        continue;
      ProvenanceRecorder::LossEvent E;
      E.Kind = Cur.Kind;
      E.Node = Cur.Node;
      E.Update = Cur.Update;
      E.Lost = A;
      E.Domain = L.attributeAtom(A);
      E.SaturationRounds = 0;
      R->record(std::move(E));
    }
  };
  Check(Before);
  if (Incoming)
    Check(*Incoming);
}
