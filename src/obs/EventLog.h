//===- obs/EventLog.h - Structured JSON-lines event log ----------*- C++ -*-===//
///
/// \file
/// A process-wide structured event log for the analysis service: one JSON
/// object per line, each stamped with a monotonic sequence number, a
/// microsecond timestamp, a severity, and the emitting component.  The
/// scheduler, the result cache and the snapshot cache report their
/// "something notable happened" moments here -- evictions, oversized
/// rejections, incremental fallbacks, timeouts, job errors -- so an
/// operator tailing the log sees *why* the counters moved, not just that
/// they did.
///
/// Design constraints:
///  * disabled is free-ish: `enabled()` is one atomic load, and every
///    emit site guards on it, so the default-off path costs a load and a
///    branch (the telemetry-off overhead bar covers this);
///  * concurrency: emitters are worker threads; one mutex serializes
///    sequence assignment, rate-limit state and the stream write, so
///    lines never interleave and sequence order matches file order;
///  * rate limiting is *count*-based, not time-based: per (component,
///    event) key, the first `BurstLimit` occurrences emit verbatim, after
///    which only power-of-two occurrence counts emit (with a "repeats"
///    field carrying the total so far).  Count-based suppression keeps a
///    replayed workload's log shape deterministic, which a wall-clock
///    token bucket cannot;
///  * the log is an operator channel, never a result channel: nothing in
///    it feeds back into analysis, and the deterministic stdout protocol
///    does not change whether it is open or not.
///
/// Line schema (docs/OBSERVABILITY.md):
///   {"seq":12,"ts_us":48211,"severity":"warn",
///    "component":"service.result_cache","event":"evict",
///    "fields":{"fingerprint":"...","bytes":1234}}
/// plus `"repeats":N` on post-burst lines.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_OBS_EVENTLOG_H
#define CAI_OBS_EVENTLOG_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace cai {
namespace obs {

enum class Severity : uint8_t { Debug, Info, Warn, Error };

const char *severityName(Severity S);

/// One key/value annotation on an event.  Values are pre-rendered: strings
/// are emitted quoted-and-escaped, raw values (numbers, booleans) verbatim.
struct EventField {
  std::string Key;
  std::string Value;
  bool Raw = false;

  static EventField str(std::string K, std::string V) {
    return {std::move(K), std::move(V), false};
  }
  static EventField num(std::string K, uint64_t V) {
    return {std::move(K), std::to_string(V), true};
  }
};

/// The log.  One per process (global()); open() points it at a stream.
class EventLog {
public:
  /// Occurrences of one (component, event) key emitted verbatim before
  /// power-of-two suppression kicks in.
  static constexpr uint64_t BurstLimit = 5;

  static EventLog &global();

  /// Attaches the log to \p OS (caller keeps ownership; pass nullptr to
  /// detach).  Emission is enabled iff a stream is attached.  Attaching
  /// also re-arms the timestamp epoch so ts_us counts from open().
  void open(std::ostream *OS);

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Emits one event line unless rate-limited.  Cheap when disabled
  /// (guarded by one atomic load).  Thread-safe.
  void emit(Severity Sev, const std::string &Component,
            const std::string &Event, std::vector<EventField> Fields = {});

  struct Stats {
    uint64_t Emitted = 0;
    uint64_t Suppressed = 0;
  };
  Stats stats() const;

  /// Detaches and forgets all rate-limit state and counters (tests).
  void resetForTest();

private:
  std::atomic<bool> Enabled{false};

  mutable std::mutex Mu;
  std::ostream *Out = nullptr; ///< Under Mu, like everything below.
  uint64_t NextSeq = 0;
  uint64_t Emitted = 0;
  uint64_t Suppressed = 0;
  std::chrono::steady_clock::time_point Epoch;
  /// Occurrence count per "component/event" rate-limit key.
  std::map<std::string, uint64_t> Occurrences;
};

} // namespace obs
} // namespace cai

#endif // CAI_OBS_EVENTLOG_H
