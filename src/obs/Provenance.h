//===- obs/Provenance.h - Precision-loss provenance --------------*- C++ -*-===//
///
/// \file
/// Records, per program point, which lattice step (join, widening,
/// narrowing meet, a component join/widening inside a product, or the
/// dummy-variable quantification of Figure 6 line 10) discarded each
/// conjunct, and which component domain of the product was responsible.
/// `cai-analyze --explain` replays this record for a failed assertion: the
/// answer to "why did the product not verify this?" is the exact step
/// where the needed fact died.
///
/// The recorder is installed process-wide like the tracer (null when off,
/// one branch per probe site).  The fixpoint engine stamps a context
/// (node, update ordinal, step kind) before each lattice step; the product
/// combinators, running inside that step, attach component-level detail.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_OBS_PROVENANCE_H
#define CAI_OBS_PROVENANCE_H

#include "term/Conjunction.h"

#include <string>
#include <vector>

namespace cai {

class LogicalLattice;

namespace obs {

/// Records precision-loss events for one analysis run.
class ProvenanceRecorder {
public:
  /// The lattice step that discarded a conjunct.
  enum class Step : uint8_t {
    Join,           ///< Confluence join at a node.
    Widen,          ///< Widening at a WTO component head.
    Narrow,         ///< Narrowing meet (rare: meets only refine).
    ComponentJoin,  ///< A component domain's join inside a product combine.
    ComponentWiden, ///< A component domain's widening inside a product.
    Quantification, ///< Dummy elimination (Figure 6 line 10) lost the fact.
  };

  /// Program-point context the fixpoint engine stamps around each step.
  struct Context {
    unsigned Node = 0;   ///< CFG node whose state the step updates.
    unsigned Update = 0; ///< Update ordinal of that node (1-based).
    Step Kind = Step::Join;
    bool Valid = false;
  };

  /// One discarded conjunct.
  struct LossEvent {
    Step Kind;
    unsigned Node;
    unsigned Update;
    Atom Lost;
    std::string Domain; ///< Responsible (innermost) component domain.
    unsigned SaturationRounds; ///< Nelson-Oppen rounds inside the step.
  };

  static ProvenanceRecorder *active() { return Active; }
  /// Installs \p R on the calling thread (nullptr disables recording);
  /// the caller keeps ownership.
  static void install(ProvenanceRecorder *R) { Active = R; }

  void setContext(Context C) { Cur = C; }
  void clearContext() { Cur = Context(); }
  const Context &context() const { return Cur; }

  void record(LossEvent E) { Events.push_back(std::move(E)); }

  /// True if a loss of \p A at the current context was already recorded
  /// (the product combinator records before the engine's generic diff).
  bool recorded(const Atom &A) const;

  const std::vector<LossEvent> &events() const { return Events; }
  void clear() { Events.clear(); }

  static const char *stepName(Step S);

  /// One human-readable line per event.
  std::string describe(const TermContext &Ctx, const LossEvent &E) const;

  /// Renders every loss relevant to \p Fact (sharing a variable with it),
  /// most relevant node (\p Node) first; falls back to the full record
  /// when nothing matches.  Returns "" when the record is empty.
  std::string explain(const TermContext &Ctx, unsigned Node,
                      const Atom &Fact) const;

private:
  Context Cur;
  std::vector<LossEvent> Events;
  static thread_local ProvenanceRecorder *Active;
};

/// RAII context stamp for one engine-level lattice step.
class ProvenanceScope {
public:
  ProvenanceScope(unsigned Node, unsigned Update, ProvenanceRecorder::Step S)
      : R(ProvenanceRecorder::active()) {
    if (R)
      R->setContext({Node, Update, S, true});
  }
  ~ProvenanceScope() {
    if (R)
      R->clearContext();
  }
  ProvenanceScope(const ProvenanceScope &) = delete;
  ProvenanceScope &operator=(const ProvenanceScope &) = delete;

private:
  ProvenanceRecorder *R;
};

/// Diffs one lattice step: every atom of \p Before (and \p Incoming, when
/// non-null) no longer entailed by \p After is recorded against the
/// current context, attributed with LogicalLattice::attributeAtom.  Called
/// by the fixpoint engine when a recorder is active.
void diffStep(const LogicalLattice &L, const Conjunction &Before,
              const Conjunction *Incoming, const Conjunction &After);

} // namespace obs
} // namespace cai

#endif // CAI_OBS_PROVENANCE_H
