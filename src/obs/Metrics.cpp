//===- obs/Metrics.cpp - Hierarchical metrics registry ---------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace cai;
using namespace cai::obs;

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry *R = new MetricsRegistry(); // Leaked; see header.
  return *R;
}

/// The per-thread override; null means "use global()".
static thread_local MetricsRegistry *CurrentRegistry = nullptr;

MetricsRegistry &MetricsRegistry::current() {
  return CurrentRegistry ? *CurrentRegistry : global();
}

void MetricsRegistry::install(MetricsRegistry *R) { CurrentRegistry = R; }

void MetricsRegistry::mergeFrom(const MetricsRegistry &Shard) {
  assertOwned();
  for (const auto &[Name, C] : Shard.Counters)
    Counters[Name].inc(C.value());
  for (const auto &[Name, G] : Shard.Gauges)
    Gauges[Name].set(G.value());
  for (const auto &[Name, H] : Shard.Histograms)
    Histograms[Name].merge(H);
}

std::map<std::string, uint64_t> MetricsRegistry::counterValues() const {
  std::map<std::string, uint64_t> Out;
  for (const auto &[Name, C] : Counters)
    Out.emplace(Name, C.value());
  return Out;
}

void MetricsRegistry::reset() {
  for (auto &[Name, C] : Counters)
    C = Counter();
  for (auto &[Name, G] : Gauges)
    G = Gauge();
  for (auto &[Name, H] : Histograms)
    H = Histogram();
}

namespace {

void writeEscaped(std::ostream &OS, const std::string &S) {
  for (char Ch : S) {
    if (Ch == '"' || Ch == '\\')
      OS << '\\';
    OS << Ch;
  }
}

/// A flattened metric ready for nesting: path segments plus a rendered
/// JSON value.
struct Flat {
  std::vector<std::string> Path;
  std::string Json;
};

std::vector<std::string> splitDots(const std::string &Name) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (true) {
    size_t Dot = Name.find('.', Pos);
    if (Dot == std::string::npos) {
      Out.push_back(Name.substr(Pos));
      return Out;
    }
    Out.push_back(Name.substr(Pos, Dot - Pos));
    Pos = Dot + 1;
  }
}

/// Emits the [Begin, End) range of sorted flattened metrics as nested JSON
/// objects, recursing on the path segment at \p Level.
void writeNested(std::ostream &OS, const std::vector<Flat> &Flats,
                 size_t Begin, size_t End, size_t Level) {
  OS << "{";
  bool First = true;
  size_t I = Begin;
  while (I < End) {
    const std::string &Seg = Flats[I].Path[Level];
    size_t J = I;
    while (J < End && Flats[J].Path.size() > Level &&
           Flats[J].Path[Level] == Seg)
      ++J;
    if (!First)
      OS << ",";
    First = false;
    OS << "\"";
    writeEscaped(OS, Seg);
    OS << "\":";
    if (J == I + 1 && Flats[I].Path.size() == Level + 1) {
      OS << Flats[I].Json;
    } else {
      // All entries in [I, J) share the segment; leaves whose path ends
      // here would collide with the subtree, so the flattener suffixes
      // them (see below) -- recurse unconditionally.
      writeNested(OS, Flats, I, J, Level + 1);
    }
    I = J;
  }
  OS << "}";
}

std::string renderDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

} // namespace

void MetricsRegistry::writeJson(std::ostream &OS) const {
  std::vector<Flat> Flats;
  auto Add = [&](const std::string &Name, std::string Json) {
    Flats.push_back({splitDots(Name), std::move(Json)});
  };
  for (const auto &[Name, C] : Counters)
    Add(Name, std::to_string(C.value()));
  for (const auto &[Name, G] : Gauges)
    Add(Name, renderDouble(G.value()));
  for (const auto &[Name, H] : Histograms) {
    std::string J = "{\"count\":" + std::to_string(H.count()) +
                    ",\"sum_us\":" + renderDouble(H.sum()) +
                    ",\"min_us\":" + renderDouble(H.min()) +
                    ",\"max_us\":" + renderDouble(H.max()) +
                    ",\"mean_us\":" + renderDouble(H.mean()) + "}";
    Add(Name, std::move(J));
  }
  // Sort by path; a leaf that is also an interior node ("a.b" next to
  // "a.b.c") would produce a duplicate key, so suffix the leaf segment.
  std::sort(Flats.begin(), Flats.end(),
            [](const Flat &A, const Flat &B) { return A.Path < B.Path; });
  for (size_t I = 0; I + 1 < Flats.size(); ++I) {
    const auto &P = Flats[I].Path, &Q = Flats[I + 1].Path;
    if (P.size() < Q.size() &&
        std::equal(P.begin(), P.end(), Q.begin()))
      Flats[I].Path.back() += "$value";
  }
  std::sort(Flats.begin(), Flats.end(),
            [](const Flat &A, const Flat &B) { return A.Path < B.Path; });
  writeNested(OS, Flats, 0, Flats.size(), 0);
  OS << "\n";
}

void MetricsRegistry::writeText(std::ostream &OS,
                                const std::string &Prefix) const {
  // std::map iteration is sorted, so the output is deterministic across
  // runs by construction.
  for (const auto &[Name, C] : Counters)
    if (Name.rfind(Prefix, 0) == 0)
      OS << Name << " = " << C.value() << "\n";
  for (const auto &[Name, G] : Gauges)
    if (Name.rfind(Prefix, 0) == 0)
      OS << Name << " = " << renderDouble(G.value()) << "\n";
  for (const auto &[Name, H] : Histograms)
    if (Name.rfind(Prefix, 0) == 0)
      OS << Name << " = {count " << H.count() << ", mean "
         << renderDouble(H.mean()) << "us, max " << renderDouble(H.max())
         << "us}\n";
}
