//===- obs/Metrics.cpp - Hierarchical metrics registry ---------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace cai;
using namespace cai::obs;

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry *R = new MetricsRegistry(); // Leaked; see header.
  return *R;
}

/// The per-thread override; null means "use global()".
static thread_local MetricsRegistry *CurrentRegistry = nullptr;

MetricsRegistry &MetricsRegistry::current() {
  return CurrentRegistry ? *CurrentRegistry : global();
}

void MetricsRegistry::install(MetricsRegistry *R) { CurrentRegistry = R; }

void MetricsRegistry::mergeFrom(const MetricsRegistry &Shard) {
  assertOwned();
  for (const auto &[Name, C] : Shard.Counters)
    Counters[Name].inc(C.value());
  for (const auto &[Name, G] : Shard.Gauges)
    Gauges[Name].set(G.value());
  for (const auto &[Name, H] : Shard.Histograms)
    Histograms[Name].merge(H);
  for (const auto &[Name, L] : Shard.Latencies)
    Latencies[Name].merge(L);
}

std::map<std::string, uint64_t> MetricsRegistry::counterValues() const {
  std::map<std::string, uint64_t> Out;
  for (const auto &[Name, C] : Counters)
    Out.emplace(Name, C.value());
  return Out;
}

void MetricsRegistry::reset() {
  for (auto &[Name, C] : Counters)
    C = Counter();
  for (auto &[Name, G] : Gauges)
    G = Gauge();
  for (auto &[Name, H] : Histograms)
    H = Histogram();
  for (auto &[Name, L] : Latencies)
    L = LatencyHistogram();
}

namespace {

void writeEscaped(std::ostream &OS, const std::string &S) {
  for (char Ch : S) {
    if (Ch == '"' || Ch == '\\')
      OS << '\\';
    OS << Ch;
  }
}

/// A flattened metric ready for nesting: path segments plus a rendered
/// JSON value.
struct Flat {
  std::vector<std::string> Path;
  std::string Json;
};

std::vector<std::string> splitDots(const std::string &Name) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (true) {
    size_t Dot = Name.find('.', Pos);
    if (Dot == std::string::npos) {
      Out.push_back(Name.substr(Pos));
      return Out;
    }
    Out.push_back(Name.substr(Pos, Dot - Pos));
    Pos = Dot + 1;
  }
}

/// Emits the [Begin, End) range of sorted flattened metrics as nested JSON
/// objects, recursing on the path segment at \p Level.
void writeNested(std::ostream &OS, const std::vector<Flat> &Flats,
                 size_t Begin, size_t End, size_t Level) {
  OS << "{";
  bool First = true;
  size_t I = Begin;
  while (I < End) {
    const std::string &Seg = Flats[I].Path[Level];
    size_t J = I;
    while (J < End && Flats[J].Path.size() > Level &&
           Flats[J].Path[Level] == Seg)
      ++J;
    if (!First)
      OS << ",";
    First = false;
    OS << "\"";
    writeEscaped(OS, Seg);
    OS << "\":";
    if (J == I + 1 && Flats[I].Path.size() == Level + 1) {
      OS << Flats[I].Json;
    } else {
      // All entries in [I, J) share the segment; leaves whose path ends
      // here would collide with the subtree, so the flattener suffixes
      // them (see below) -- recurse unconditionally.
      writeNested(OS, Flats, I, J, Level + 1);
    }
    I = J;
  }
  OS << "}";
}

std::string renderDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

} // namespace

void MetricsRegistry::writeJson(std::ostream &OS) const {
  std::vector<Flat> Flats;
  auto Add = [&](const std::string &Name, std::string Json) {
    Flats.push_back({splitDots(Name), std::move(Json)});
  };
  for (const auto &[Name, C] : Counters)
    Add(Name, std::to_string(C.value()));
  for (const auto &[Name, G] : Gauges)
    Add(Name, renderDouble(G.value()));
  for (const auto &[Name, H] : Histograms) {
    std::string J = "{\"count\":" + std::to_string(H.count()) +
                    ",\"sum_us\":" + renderDouble(H.sum()) +
                    ",\"min_us\":" + renderDouble(H.min()) +
                    ",\"max_us\":" + renderDouble(H.max()) +
                    ",\"mean_us\":" + renderDouble(H.mean()) + "}";
    Add(Name, std::move(J));
  }
  for (const auto &[Name, L] : Latencies) {
    std::string J = "{\"count\":" + std::to_string(L.count()) +
                    ",\"sum_us\":" + std::to_string(L.sum()) +
                    ",\"min_us\":" + std::to_string(L.min()) +
                    ",\"max_us\":" + std::to_string(L.max()) +
                    ",\"p50_us\":" + std::to_string(L.percentile(0.50)) +
                    ",\"p90_us\":" + std::to_string(L.percentile(0.90)) +
                    ",\"p99_us\":" + std::to_string(L.percentile(0.99)) + "}";
    Add(Name, std::move(J));
  }
  // Sort by path; a leaf that is also an interior node ("a.b" next to
  // "a.b.c") would produce a duplicate key, so suffix the leaf segment.
  std::sort(Flats.begin(), Flats.end(),
            [](const Flat &A, const Flat &B) { return A.Path < B.Path; });
  for (size_t I = 0; I + 1 < Flats.size(); ++I) {
    const auto &P = Flats[I].Path, &Q = Flats[I + 1].Path;
    if (P.size() < Q.size() &&
        std::equal(P.begin(), P.end(), Q.begin()))
      Flats[I].Path.back() += "$value";
  }
  std::sort(Flats.begin(), Flats.end(),
            [](const Flat &A, const Flat &B) { return A.Path < B.Path; });
  writeNested(OS, Flats, 0, Flats.size(), 0);
  OS << "\n";
}

void MetricsRegistry::writeText(std::ostream &OS,
                                const std::string &Prefix) const {
  // std::map iteration is sorted, so the output is deterministic across
  // runs by construction.
  for (const auto &[Name, C] : Counters)
    if (Name.rfind(Prefix, 0) == 0)
      OS << Name << " = " << C.value() << "\n";
  for (const auto &[Name, G] : Gauges)
    if (Name.rfind(Prefix, 0) == 0)
      OS << Name << " = " << renderDouble(G.value()) << "\n";
  for (const auto &[Name, H] : Histograms)
    if (Name.rfind(Prefix, 0) == 0)
      OS << Name << " = {count " << H.count() << ", mean "
         << renderDouble(H.mean()) << "us, max " << renderDouble(H.max())
         << "us}\n";
  for (const auto &[Name, L] : Latencies)
    if (Name.rfind(Prefix, 0) == 0)
      OS << Name << " = {count " << L.count() << ", p50 "
         << L.percentile(0.50) << "us, p90 " << L.percentile(0.90)
         << "us, p99 " << L.percentile(0.99) << "us, max " << L.max()
         << "us}\n";
}

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.  Everything the
/// registry's dotted names contain outside that set becomes '_', and the
/// `cai_` prefix both namespaces the export and keeps a leading digit from
/// ever starting the name.
std::string promName(const std::string &Name) {
  std::string Out = "cai_";
  for (char Ch : Name) {
    bool Ok = (Ch >= 'a' && Ch <= 'z') || (Ch >= 'A' && Ch <= 'Z') ||
              (Ch >= '0' && Ch <= '9') || Ch == '_';
    Out += Ok ? Ch : '_';
  }
  return Out;
}

void promHeader(std::ostream &OS, const std::string &PName,
                const std::string &Orig, const char *Type) {
  OS << "# HELP " << PName << " cai metric " << Orig << "\n";
  OS << "# TYPE " << PName << " " << Type << "\n";
}

} // namespace

void MetricsRegistry::writePrometheus(std::ostream &OS) const {
  // std::map iteration order makes every section sorted and repeatable.
  for (const auto &[Name, C] : Counters) {
    std::string P = promName(Name);
    promHeader(OS, P, Name, "counter");
    OS << P << " " << C.value() << "\n";
  }
  for (const auto &[Name, G] : Gauges) {
    std::string P = promName(Name);
    promHeader(OS, P, Name, "gauge");
    OS << P << " " << renderDouble(G.value()) << "\n";
  }
  for (const auto &[Name, H] : Histograms) {
    std::string P = promName(Name);
    promHeader(OS, P, Name, "histogram");
    uint64_t Cum = 0;
    for (unsigned I = 0; I < Histogram::NumBuckets; ++I) {
      if (H.bucket(I) == 0)
        continue;
      Cum += H.bucket(I);
      // Bucket I covers [2^I, 2^(I+1)) us; le is the exclusive upper
      // bound, which over-approximates by at most one ulp of the grid.
      OS << P << "_bucket{le=\"" << (1ull << (I + 1)) << "\"} " << Cum
         << "\n";
    }
    OS << P << "_bucket{le=\"+Inf\"} " << H.count() << "\n";
    OS << P << "_sum " << renderDouble(H.sum()) << "\n";
    OS << P << "_count " << H.count() << "\n";
  }
  for (const auto &[Name, L] : Latencies) {
    std::string P = promName(Name);
    promHeader(OS, P, Name, "histogram");
    uint64_t Cum = 0;
    for (unsigned I = 0; I < LatencyHistogram::NumBuckets; ++I) {
      if (L.bucket(I) == 0)
        continue;
      Cum += L.bucket(I);
      uint64_t Ub = LatencyHistogram::bucketUpperBound(I);
      if (Ub == UINT64_MAX)
        continue; // The clamping bucket; the +Inf line below covers it.
      OS << P << "_bucket{le=\"" << Ub << "\"} " << Cum << "\n";
    }
    OS << P << "_bucket{le=\"+Inf\"} " << L.count() << "\n";
    OS << P << "_sum " << L.sum() << "\n";
    OS << P << "_count " << L.count() << "\n";
  }
}
