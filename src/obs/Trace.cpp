//===- obs/Trace.cpp - Scoped event tracing --------------------------------===//

#include "obs/Trace.h"

using namespace cai;
using namespace cai::obs;

thread_local Tracer *Tracer::Active = nullptr;

namespace {

/// Escapes a string for a JSON string literal.
void writeEscaped(std::ostream &OS, const char *S) {
  for (; *S; ++S) {
    unsigned char C = static_cast<unsigned char>(*S);
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << static_cast<char>(C);
      }
    }
  }
}

} // namespace

void Tracer::writeEvents(std::ostream &OS, unsigned Tid, bool &First) const {
  // The begin events whose matching end has not been recorded yet; they
  // are closed at MaxTs below so partial traces still load.
  unsigned Open = 0;
  uint64_t MaxTs = 0;
  for (const Event &E : Events) {
    if (!First)
      OS << ",";
    First = false;
    MaxTs = E.TsUs > MaxTs ? E.TsUs : MaxTs;
    OS << "{\"ph\":\"" << E.Ph << "\",\"pid\":1,\"tid\":" << Tid
       << ",\"ts\":" << E.TsUs;
    if (E.Ph == 'E') {
      if (Open)
        --Open;
      OS << "}";
      continue;
    }
    if (E.Ph == 'B')
      ++Open;
    OS << ",\"name\":\"";
    writeEscaped(OS, E.Name);
    OS << "\",\"cat\":\"";
    writeEscaped(OS, E.Cat ? E.Cat : "cai");
    OS << "\"";
    if (E.Ph == 'i')
      OS << ",\"s\":\"t\"";
    if (E.Ph == 'C') {
      OS << ",\"args\":{\"value\":" << E.Value << "}";
    } else if (!E.Args.empty()) {
      OS << ",\"args\":{";
      for (size_t I = 0; I < E.Args.size(); ++I) {
        if (I)
          OS << ",";
        OS << "\"";
        writeEscaped(OS, E.Args[I].Key);
        OS << "\":\"";
        writeEscaped(OS, E.Args[I].Value.c_str());
        OS << "\"";
      }
      OS << "}";
    }
    OS << "}";
  }
  for (; Open > 0; --Open) {
    if (!First)
      OS << ",";
    First = false;
    OS << "{\"ph\":\"E\",\"pid\":1,\"tid\":" << Tid << ",\"ts\":" << MaxTs
       << "}";
  }
}

void Tracer::writeJson(std::ostream &OS) const {
  OS << "{\"traceEvents\":[";
  bool First = true;
  writeEvents(OS, 1, First);
  OS << "],\"displayTimeUnit\":\"ms\"}\n";
}

void Tracer::writeMergedJson(std::ostream &OS,
                             const std::vector<const Tracer *> &Shards) {
  OS << "{\"traceEvents\":[";
  bool First = true;
  for (size_t I = 0; I < Shards.size(); ++I)
    if (Shards[I])
      Shards[I]->writeEvents(OS, static_cast<unsigned>(I + 1), First);
  OS << "],\"displayTimeUnit\":\"ms\"}\n";
}
