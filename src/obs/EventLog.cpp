//===- obs/EventLog.cpp - Structured JSON-lines event log ------------------===//

#include "obs/EventLog.h"

#include <cstdio>

using namespace cai;
using namespace cai::obs;

const char *cai::obs::severityName(Severity S) {
  switch (S) {
  case Severity::Debug:
    return "debug";
  case Severity::Info:
    return "info";
  case Severity::Warn:
    return "warn";
  case Severity::Error:
    return "error";
  }
  return "info";
}

EventLog &EventLog::global() {
  static EventLog *L = new EventLog(); // Leaked like MetricsRegistry.
  return *L;
}

void EventLog::open(std::ostream *OS) {
  std::lock_guard<std::mutex> Lock(Mu);
  Out = OS;
  if (OS)
    Epoch = std::chrono::steady_clock::now();
  Enabled.store(OS != nullptr, std::memory_order_relaxed);
}

namespace {

void writeEscaped(std::ostream &OS, const std::string &S) {
  OS << '"';
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\r':
      OS << "\\r";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(Ch)));
        OS << Buf;
      } else {
        OS << Ch;
      }
    }
  }
  OS << '"';
}

/// True when \p N is one of the post-burst emission points: a power of
/// two (so the log thins out exponentially instead of going silent).
bool powerOfTwo(uint64_t N) { return N != 0 && (N & (N - 1)) == 0; }

} // namespace

void EventLog::emit(Severity Sev, const std::string &Component,
                    const std::string &Event,
                    std::vector<EventField> Fields) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Out)
    return; // Raced a close.
  uint64_t N = ++Occurrences[Component + "/" + Event];
  if (N > BurstLimit && !powerOfTwo(N)) {
    ++Suppressed;
    return;
  }
  uint64_t TsUs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
  std::ostream &OS = *Out;
  OS << "{\"seq\":" << ++NextSeq << ",\"ts_us\":" << TsUs << ",\"severity\":\""
     << severityName(Sev) << "\",\"component\":";
  writeEscaped(OS, Component);
  OS << ",\"event\":";
  writeEscaped(OS, Event);
  if (N > BurstLimit)
    OS << ",\"repeats\":" << N;
  OS << ",\"fields\":{";
  bool First = true;
  for (const EventField &F : Fields) {
    if (!First)
      OS << ",";
    First = false;
    writeEscaped(OS, F.Key);
    OS << ":";
    if (F.Raw)
      OS << F.Value;
    else
      writeEscaped(OS, F.Value);
  }
  OS << "}}\n";
  OS.flush();
  ++Emitted;
}

EventLog::Stats EventLog::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return {Emitted, Suppressed};
}

void EventLog::resetForTest() {
  std::lock_guard<std::mutex> Lock(Mu);
  Out = nullptr;
  Enabled.store(false, std::memory_order_relaxed);
  NextSeq = Emitted = Suppressed = 0;
  Occurrences.clear();
}
