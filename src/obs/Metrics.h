//===- obs/Metrics.h - Hierarchical metrics registry -------------*- C++ -*-===//
///
/// \file
/// A process-wide registry of named counters, gauges, and time histograms
/// -- the single export point for every statistic the analyzer, the
/// product combinators, the decision procedures and the caches produce.
/// Names are dotted paths ("simplex.solves", "analyzer.joins"); the JSON
/// export nests on the dots and the text export emits one sorted
/// "name = value" line per metric, so two identical runs print
/// byte-identical output (the --stats determinism test relies on this).
///
/// Hot-path discipline: a counter increment is one pointer-stable
/// reference cached per probe site and thread (a thread_local local,
/// revalidated against the thread's installed registry by one pointer
/// compare) plus a 64-bit add -- no lookup, no lock (one analysis per
/// thread, same contract as QueryCache).  Time histograms cost a clock
/// read per sample and are therefore gated behind enableTiming(), which
/// cai-analyze turns on with --metrics-out.  -DCAI_DISABLE_OBS compiles
/// the probe macros out entirely.
///
/// Sharding: probes resolve through MetricsRegistry::current(), which is
/// the registry installed on the calling thread (install()) or the
/// process-wide global() when none is.  The analysis service gives every
/// worker its own shard registry and merges them deterministically on
/// export (mergeFrom: counters and histograms sum, gauges last-shard
/// wins).  Each registry asserts, in builds with assertions (all of
/// ours), that mutation happens only on the thread that owns it.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_OBS_METRICS_H
#define CAI_OBS_METRICS_H

#include <cassert>
#include <chrono>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <thread>

namespace cai {
namespace obs {

/// A monotonically increasing 64-bit counter.
class Counter {
public:
  void inc(uint64_t N = 1) { V += N; }
  uint64_t value() const { return V; }

private:
  uint64_t V = 0;
};

/// A last-value-wins metric (e.g. "wto.components" of the latest run).
class Gauge {
public:
  void set(double X) { V = X; }
  double value() const { return V; }

private:
  double V = 0;
};

/// A time histogram over exponential (power-of-two microsecond) buckets,
/// plus count/sum/min/max.  Bucket I counts samples in [2^I, 2^(I+1)) us,
/// bucket 0 includes everything below 1 us.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 32;

  void record(double Us) {
    ++Count;
    Sum += Us;
    if (Count == 1 || Us < MinV)
      MinV = Us;
    if (Count == 1 || Us > MaxV)
      MaxV = Us;
    unsigned B = 0;
    while (B + 1 < NumBuckets && Us >= static_cast<double>(1ull << (B + 1)))
      ++B;
    ++Buckets[B];
  }

  uint64_t count() const { return Count; }
  double sum() const { return Sum; }
  double min() const { return MinV; }
  double max() const { return MaxV; }
  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0; }
  uint64_t bucket(unsigned I) const { return Buckets[I]; }

  /// Folds \p RHS into this histogram: counts, sums and buckets add,
  /// min/max combine.  The shard-merge primitive.
  void merge(const Histogram &RHS) {
    if (RHS.Count == 0)
      return;
    if (Count == 0 || RHS.MinV < MinV)
      MinV = RHS.MinV;
    if (Count == 0 || RHS.MaxV > MaxV)
      MaxV = RHS.MaxV;
    Count += RHS.Count;
    Sum += RHS.Sum;
    for (unsigned I = 0; I < NumBuckets; ++I)
      Buckets[I] += RHS.Buckets[I];
  }

private:
  uint64_t Count = 0;
  double Sum = 0, MinV = 0, MaxV = 0;
  uint64_t Buckets[NumBuckets] = {};
};

/// A latency histogram over log-bucketed integer microseconds with exact
/// deterministic percentile extraction.  The layout is fixed at compile
/// time (HdrHistogram-style): 8 linear sub-buckets per power-of-two
/// octave, so every bucket is at most 12.5% wide relative to its lower
/// bound, and two histograms -- or the same histogram across shards --
/// always agree bucket for bucket.  percentile() returns the lower bound
/// of the bucket containing the nearest-rank sample, clamped to
/// [min, max]; the value is therefore within 12.5% of the true sample and
/// *bucket-exact* against a sorted-vector oracle (obs_test pins both).
class LatencyHistogram {
public:
  /// 8 unit-width buckets for [0,8), then 8 sub-buckets per octave up to
  /// 2^40 us (~12.7 days); everything larger clamps into the last bucket.
  static constexpr unsigned NumBuckets = 304;

  /// The bucket index of \p Us.  For Us < 8 the bucket is Us itself; for
  /// larger values, octave k = floor(log2 Us) contributes 8 sub-buckets
  /// selected by the 3 bits below the leading bit.
  static unsigned bucketIndex(uint64_t Us) {
    if (Us < 8)
      return static_cast<unsigned>(Us);
    unsigned K = 63 - static_cast<unsigned>(countLeadingZeros(Us));
    unsigned Sub = static_cast<unsigned>((Us >> (K - 3)) & 7);
    unsigned Idx = 8 * (K - 2) + Sub;
    return Idx < NumBuckets ? Idx : NumBuckets - 1;
  }

  /// The smallest value landing in bucket \p Idx.
  static uint64_t bucketLowerBound(unsigned Idx) {
    if (Idx < 8)
      return Idx;
    unsigned K = Idx / 8 + 2;
    return static_cast<uint64_t>(8 + Idx % 8) << (K - 3);
  }

  /// One past the largest value in bucket \p Idx (UINT64_MAX for the
  /// clamping last bucket).
  static uint64_t bucketUpperBound(unsigned Idx) {
    return Idx + 1 < NumBuckets ? bucketLowerBound(Idx + 1) : UINT64_MAX;
  }

  void record(uint64_t Us) {
    ++Count;
    Sum += Us;
    if (Count == 1 || Us < MinV)
      MinV = Us;
    if (Count == 1 || Us > MaxV)
      MaxV = Us;
    ++Buckets[bucketIndex(Us)];
  }

  uint64_t count() const { return Count; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return MinV; }
  uint64_t max() const { return MaxV; }
  uint64_t bucket(unsigned I) const { return Buckets[I]; }

  /// The \p Q quantile (0 < Q <= 1) by nearest rank: the lower bound of
  /// the bucket holding sample number ceil(Q * count), clamped to
  /// [min, max] so p0/p100 degenerate to the exact extremes.  0 when
  /// empty.  Deterministic: depends only on bucket contents.
  uint64_t percentile(double Q) const {
    if (Count == 0)
      return 0;
    double Scaled = Q * static_cast<double>(Count);
    uint64_t Rank = static_cast<uint64_t>(Scaled);
    if (static_cast<double>(Rank) < Scaled)
      ++Rank; // ceil
    if (Rank < 1)
      Rank = 1;
    if (Rank > Count)
      Rank = Count;
    uint64_t Seen = 0;
    for (unsigned I = 0; I < NumBuckets; ++I) {
      Seen += Buckets[I];
      if (Seen >= Rank) {
        uint64_t V = bucketLowerBound(I);
        if (V < MinV)
          V = MinV;
        if (V > MaxV)
          V = MaxV;
        return V;
      }
    }
    return MaxV; // Unreachable when counts are consistent.
  }

  /// Folds \p RHS in: buckets/count/sum add, min/max combine.  Merging N
  /// shard histograms in any order yields the same buckets as recording
  /// every sample into one histogram (the cross-shard property test).
  void merge(const LatencyHistogram &RHS) {
    if (RHS.Count == 0)
      return;
    if (Count == 0 || RHS.MinV < MinV)
      MinV = RHS.MinV;
    if (Count == 0 || RHS.MaxV > MaxV)
      MaxV = RHS.MaxV;
    Count += RHS.Count;
    Sum += RHS.Sum;
    for (unsigned I = 0; I < NumBuckets; ++I)
      Buckets[I] += RHS.Buckets[I];
  }

private:
  static unsigned countLeadingZeros(uint64_t V) {
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<unsigned>(__builtin_clzll(V));
#else
    unsigned N = 0;
    for (uint64_t Bit = 1ull << 63; Bit && !(V & Bit); Bit >>= 1)
      ++N;
    return N;
#endif
  }

  uint64_t Count = 0;
  uint64_t Sum = 0, MinV = 0, MaxV = 0;
  uint64_t Buckets[NumBuckets] = {};
};

/// The registry.  References returned by counter()/gauge()/histogram() are
/// stable for the process lifetime (backed by std::map nodes on a leaked
/// singleton), which is what lets probe sites cache them in local statics.
class MetricsRegistry {
public:
  MetricsRegistry() : Owner(std::this_thread::get_id()) {}

  /// The process-wide registry (never destroyed, so probe sites cached in
  /// static locals stay valid during shutdown).
  static MetricsRegistry &global();

  /// The registry probes on the calling thread resolve to: the one
  /// installed with install() on this thread, else global().
  static MetricsRegistry &current();

  /// Installs \p R as the calling thread's registry (nullptr reverts to
  /// global()).  The caller keeps ownership.  Service workers install
  /// their shard registry once, at thread start, before any probe runs.
  static void install(MetricsRegistry *R);

  /// Rebinds the ownership assertion to the calling thread; a scheduler
  /// constructs shard registries up front and each worker adopts its own.
  void adoptByCurrentThread() { Owner = std::this_thread::get_id(); }

  Counter &counter(const std::string &Name) {
    assertOwned();
    return Counters[Name];
  }
  Gauge &gauge(const std::string &Name) {
    assertOwned();
    return Gauges[Name];
  }
  Histogram &histogram(const std::string &Name) {
    assertOwned();
    return Histograms[Name];
  }
  LatencyHistogram &latency(const std::string &Name) {
    assertOwned();
    return Latencies[Name];
  }

  /// Read-only lookup; nullptr when never recorded.  Exports and tests.
  const LatencyHistogram *findLatency(const std::string &Name) const {
    auto It = Latencies.find(Name);
    return It == Latencies.end() ? nullptr : &It->second;
  }

  /// Folds \p Shard into this registry: counters and histogram contents
  /// sum; gauges take the incoming value (so merging shards in index
  /// order makes the last-writing shard win deterministically).  Reads
  /// \p Shard without asserting its ownership -- callers merge after the
  /// shard's worker has been joined.
  void mergeFrom(const MetricsRegistry &Shard);

  /// Whether ScopedTimer samples are recorded (clock reads cost ~20ns
  /// each; off by default).
  bool timingEnabled() const { return Timing; }
  void enableTiming(bool On = true) { Timing = On; }

  /// Snapshot of every counter value, for before/after deltas in tests.
  std::map<std::string, uint64_t> counterValues() const;

  /// Hierarchical JSON: dotted names become nested objects, sorted keys.
  void writeJson(std::ostream &OS) const;

  /// One sorted "name = value" line per metric (the --stats backend).
  void writeText(std::ostream &OS, const std::string &Prefix = "") const;

  /// Prometheus text exposition (version 0.0.4): every metric mangled to
  /// `cai_<name with non-alphanumerics as '_'>`, counters as `counter`,
  /// gauges as `gauge`, both histogram kinds as `histogram` with
  /// cumulative `_bucket{le="..."}` series (non-empty buckets only; the
  /// final `+Inf` bucket always equals `_count`).  Sorted and
  /// deterministic like the other exports.
  void writePrometheus(std::ostream &OS) const;

  /// Zeroes every metric (counters keep their registration).  Tests only;
  /// probe-site references remain valid.
  void reset();

private:
  /// Mutating a registry from a thread that does not own it corrupts the
  /// std::map undetectably; fail loudly instead.
  void assertOwned() const {
    assert(Owner == std::this_thread::get_id() &&
           "MetricsRegistry mutated from a thread other than its owner; "
           "shard registries must be installed/adopted per worker thread");
  }

  bool Timing = false;
  std::thread::id Owner;
  std::map<std::string, Counter> Counters;
  std::map<std::string, Gauge> Gauges;
  std::map<std::string, Histogram> Histograms;
  std::map<std::string, LatencyHistogram> Latencies;
};

namespace detail {

/// Per-site, per-thread probe caching: revalidates the cached reference
/// with one pointer compare so installing a different registry on this
/// thread (or never installing one) always resolves correctly.
inline Counter &currentCounter(MetricsRegistry *&Cached, Counter *&C,
                               const char *Name) {
  MetricsRegistry &Cur = MetricsRegistry::current();
  if (&Cur != Cached) {
    Cached = &Cur;
    C = &Cur.counter(Name);
  }
  return *C;
}

inline Histogram &currentHistogram(MetricsRegistry *&Cached, Histogram *&H,
                                   const char *Name) {
  MetricsRegistry &Cur = MetricsRegistry::current();
  if (&Cur != Cached) {
    Cached = &Cur;
    H = &Cur.histogram(Name);
  }
  return *H;
}

} // namespace detail

/// RAII timer recording its scope's duration (microseconds) into a
/// histogram when timing is enabled.
class ScopedTimer {
public:
  explicit ScopedTimer(Histogram &H)
      : H(MetricsRegistry::current().timingEnabled() ? &H : nullptr) {
    if (this->H)
      Start = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (H)
      H->record(std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - Start)
                    .count());
  }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  Histogram *H;
  std::chrono::steady_clock::time_point Start;
};

} // namespace obs
} // namespace cai

#ifdef CAI_DISABLE_OBS
#define CAI_METRIC_INC(Name)
#define CAI_METRIC_ADD(Name, N)
#define CAI_METRIC_TIME(Name)
#else
#ifndef CAI_OBS_CONCAT
#define CAI_OBS_CONCAT_(A, B) A##B
#define CAI_OBS_CONCAT(A, B) CAI_OBS_CONCAT_(A, B)
#endif
/// Bumps the named counter in the calling thread's registry; the registry
/// lookup happens once per site per thread (plus one pointer compare per
/// hit to revalidate against the installed registry).
#define CAI_METRIC_INC(Name)                                                   \
  do {                                                                         \
    static thread_local ::cai::obs::MetricsRegistry *CaiR = nullptr;           \
    static thread_local ::cai::obs::Counter *CaiC = nullptr;                   \
    ::cai::obs::detail::currentCounter(CaiR, CaiC, Name).inc();                \
  } while (0)
#define CAI_METRIC_ADD(Name, N)                                                \
  do {                                                                         \
    static thread_local ::cai::obs::MetricsRegistry *CaiR = nullptr;           \
    static thread_local ::cai::obs::Counter *CaiC = nullptr;                   \
    ::cai::obs::detail::currentCounter(CaiR, CaiC, Name)                       \
        .inc(static_cast<uint64_t>(N));                                        \
  } while (0)
/// Times the rest of the enclosing scope into the named histogram.
#define CAI_METRIC_TIME(Name)                                                  \
  static thread_local ::cai::obs::MetricsRegistry *CAI_OBS_CONCAT(             \
      CaiMR_, __LINE__) = nullptr;                                             \
  static thread_local ::cai::obs::Histogram *CAI_OBS_CONCAT(CaiHP_,            \
                                                            __LINE__) =       \
      nullptr;                                                                 \
  ::cai::obs::ScopedTimer CAI_OBS_CONCAT(CaiTimer_, __LINE__)(                 \
      ::cai::obs::detail::currentHistogram(                                    \
          CAI_OBS_CONCAT(CaiMR_, __LINE__), CAI_OBS_CONCAT(CaiHP_, __LINE__), \
          Name))
#endif

#endif // CAI_OBS_METRICS_H
