//===- domains/lists/ListDomain.cpp - The theory of lists ------------------===//

#include "domains/lists/ListDomain.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include "domains/uf/UFJoin.h"

#include <algorithm>

using namespace cai;

void ListDomain::applyProjectionRules(CongruenceClosure &CC) const {
  // For every car/cdr application whose argument's class contains a cons
  // node, merge the projection with the corresponding cons argument.
  // Quadratic scan to fixpoint; E-graphs here are small.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    unsigned Count = CC.numNodes(); // Merges do not add nodes.
    for (unsigned U = 0; U < Count; ++U) {
      if (!CC.isApp(U))
        continue;
      Symbol S = CC.symbolOf(U);
      if (S != Car && S != Cdr)
        continue;
      unsigned ArgClass = CC.find(CC.argsOf(U)[0]);
      for (unsigned M = 0; M < Count; ++M) {
        if (!CC.isApp(M) || CC.symbolOf(M) != Cons || CC.find(M) != ArgClass)
          continue;
        unsigned Projected = CC.argsOf(M)[S == Car ? 0 : 1];
        if (CC.find(U) != CC.find(Projected)) {
          CC.merge(U, Projected);
          Changed = true;
        }
      }
    }
  }
}

CongruenceClosure ListDomain::closureOf(const Conjunction &E) const {
  CongruenceClosure CC(context());
  CC.addConjunction(E);
  for (Term V : E.vars())
    CC.addTerm(V);
  // Materialize car/cdr over every cons node: facts like car(p) = x are
  // implied by p = cons(x, t) without the projection term occurring in the
  // input, and join/projection/Alternate can only speak about terms with
  // nodes.  (Materialization adds no new cons nodes, so one pass is
  // enough.)
  TermContext &Ctx = context();
  unsigned Count = CC.numNodes();
  for (unsigned N = 0; N < Count; ++N) {
    if (!CC.isApp(N) || CC.symbolOf(N) != Cons)
      continue;
    Term ConsTerm = CC.termOf(N);
    CC.addTerm(Ctx.mkApp(Car, {ConsTerm}));
    CC.addTerm(Ctx.mkApp(Cdr, {ConsTerm}));
  }
  applyProjectionRules(CC);
  return CC;
}

Conjunction ListDomain::join(const Conjunction &A, const Conjunction &B) const {
  CAI_TRACE_SPAN("lists.join", "domain");
  CAI_METRIC_INC("domain.lists.joins");
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  CongruenceClosure CC1 = closureOf(A);
  CongruenceClosure CC2 = closureOf(B);
  std::vector<Term> Shared = A.vars();
  for (Term V : B.vars())
    Shared.push_back(V);
  std::sort(Shared.begin(), Shared.end(), TermStructLess());
  Shared.erase(std::unique(Shared.begin(), Shared.end()), Shared.end());
  return ufJoinClosed(context(), CC1, CC2, Shared);
}

Conjunction ListDomain::existQuant(const Conjunction &E,
                                   const std::vector<Term> &Vars) const {
  if (E.isBottom())
    return E;
  CongruenceClosure CC = closureOf(E);
  return ufProjectClosed(context(), CC, Vars);
}

bool ListDomain::entails(const Conjunction &E, const Atom &A) const {
  if (E.isBottom())
    return true;
  if (A.isTrivial(context()))
    return true;
  if (A.predicate() != context().eqSymbol())
    return false;
  CongruenceClosure CC = closureOf(E);
  CC.addTerm(A.lhs());
  CC.addTerm(A.rhs());
  // New terms can enable new projections (car(cons(a, b)) appearing only
  // in the query), so re-run the axioms before deciding.
  applyProjectionRules(CC);
  return CC.areEqual(A.lhs(), A.rhs());
}

std::vector<std::pair<Term, Term>>
ListDomain::impliedVarEqualities(const Conjunction &E) const {
  std::vector<std::pair<Term, Term>> Out;
  if (E.isBottom())
    return Out;
  CongruenceClosure CC = closureOf(E);
  for (const std::vector<unsigned> &Class : CC.allClasses()) {
    Term Leader = nullptr;
    for (unsigned N : Class) {
      Term T = CC.termOf(N);
      if (!T->isVariable())
        continue;
      if (!Leader)
        Leader = T;
      else
        Out.emplace_back(Leader, T);
    }
  }
  return Out;
}

std::optional<Term> ListDomain::alternate(const Conjunction &E, Term Var,
                                          const std::vector<Term> &Avoid) const {
  if (E.isBottom())
    return std::nullopt;
  CongruenceClosure CC = closureOf(E);
  return ufAlternateClosed(context(), CC, Var, Avoid);
}

std::vector<std::pair<Term, Term>>
ListDomain::alternateBatch(const Conjunction &E,
                           const std::vector<Term> &Targets) const {
  if (E.isBottom())
    return {};
  CongruenceClosure CC = closureOf(E);
  return ufAlternateBatchClosed(context(), CC, Targets);
}

Conjunction ListDomain::widen(const Conjunction &Old,
                              const Conjunction &New) const {
  Conjunction Joined = join(Old, New);
  if (Joined.isBottom())
    return Joined;
  // Same depth-capping discipline as the UF domain.
  Conjunction Out;
  for (const Atom &A : Joined.atoms()) {
    bool TooDeep = false;
    for (Term Arg : A.args())
      TooDeep |= termDepth(Arg) > 16;
    if (!TooDeep)
      Out.add(A);
  }
  return Out;
}
