//===- domains/lists/ListDomain.h - The theory of lists ---------*- C++ -*-===//
///
/// \file
/// The logical lattice over the theory of lists (Section 2): signature
/// {car, cdr, cons, =} with the projection axioms car(cons(x, y)) = x and
/// cdr(cons(x, y)) = y.  (The partial extensionality axiom of Nelson-Oppen
/// lists is omitted to keep the theory convex and the closure Horn.)
///
/// Implementation: congruence closure with the projection rules run to
/// fixpoint, then the E-graph join / projection machinery shared with the
/// UF domain.  Because a LogicalProduct of disjoint convex theories is
/// itself a logical lattice, this domain lets products nest:
/// (affine >< uf) >< lists is exercised by the tests.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_DOMAINS_LISTS_LISTDOMAIN_H
#define CAI_DOMAINS_LISTS_LISTDOMAIN_H

#include "domains/uf/CongruenceClosure.h"
#include "theory/LogicalLattice.h"

namespace cai {

/// The list (car/cdr/cons) domain.
class ListDomain : public LogicalLattice {
public:
  explicit ListDomain(TermContext &Ctx)
      : LogicalLattice(Ctx), Car(Ctx.getFunction("car", 1)),
        Cdr(Ctx.getFunction("cdr", 1)), Cons(Ctx.getFunction("cons", 2)) {}

  std::string name() const override { return "lists"; }

  bool ownsFunction(Symbol S) const override {
    return S == Car || S == Cdr || S == Cons;
  }
  bool ownsPredicate(Symbol) const override { return false; }
  bool ownsNumerals() const override { return false; }

  Symbol carSym() const { return Car; }
  Symbol cdrSym() const { return Cdr; }
  Symbol consSym() const { return Cons; }

  Conjunction join(const Conjunction &A, const Conjunction &B) const override;
  Conjunction existQuant(const Conjunction &E,
                         const std::vector<Term> &Vars) const override;
  bool entails(const Conjunction &E, const Atom &A) const override;
  bool isUnsat(const Conjunction &E) const override { return E.isBottom(); }
  std::vector<std::pair<Term, Term>>
  impliedVarEqualities(const Conjunction &E) const override;
  std::optional<Term> alternate(const Conjunction &E, Term Var,
                                const std::vector<Term> &Avoid) const override;
  std::vector<std::pair<Term, Term>>
  alternateBatch(const Conjunction &E,
                 const std::vector<Term> &Targets) const override;
  Conjunction widen(const Conjunction &Old,
                    const Conjunction &New) const override;

  /// Runs the projection axioms to fixpoint on an existing closure
  /// (exposed for tests).
  void applyProjectionRules(CongruenceClosure &CC) const;

private:
  /// Builds a congruence closure of \p E with the list axioms applied.
  CongruenceClosure closureOf(const Conjunction &E) const;

  Symbol Car, Cdr, Cons;
};

} // namespace cai

#endif // CAI_DOMAINS_LISTS_LISTDOMAIN_H
