//===- domains/sign/SignDomain.h - The sign domain --------------*- C++ -*-===//
///
/// \file
/// The logical lattice over the paper's "theory of sign" (Section 2):
/// signature {=, positive, negative, +, -, 0, 1} with integer semantics
/// positive(t) iff t >= 1 and negative(t) iff t <= -1.  Elements are
/// conjunctions of linear equalities plus positive/negative facts about
/// *variables*; internally the domain reasons with a full polyhedron but
/// the output language is deliberately restricted (sign facts on variables
/// only), which is what reproduces the Figure 8 incompleteness example:
/// Q(positive(x0) && x = x0 - 1, {x0}) = true because "x >= 0" is not
/// expressible.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_DOMAINS_SIGN_SIGNDOMAIN_H
#define CAI_DOMAINS_SIGN_SIGNDOMAIN_H

#include "domains/poly/PolyDomain.h"

namespace cai {

/// The sign (positive/negative + linear equalities) domain.
class SignDomain : public LogicalLattice {
public:
  explicit SignDomain(TermContext &Ctx)
      : LogicalLattice(Ctx), Poly(Ctx),
        PositivePred(Ctx.getPredicate("positive", 1)),
        NegativePred(Ctx.getPredicate("negative", 1)) {}

  std::string name() const override { return "sign"; }

  bool ownsFunction(Symbol) const override { return false; }
  bool ownsPredicate(Symbol S) const override {
    return S == PositivePred || S == NegativePred;
  }
  bool ownsNumerals() const override { return true; }

  Symbol positivePred() const { return PositivePred; }
  Symbol negativePred() const { return NegativePred; }

  Conjunction join(const Conjunction &A, const Conjunction &B) const override;
  Conjunction existQuant(const Conjunction &E,
                         const std::vector<Term> &Vars) const override;
  bool entails(const Conjunction &E, const Atom &A) const override;
  bool isUnsat(const Conjunction &E) const override;
  std::vector<std::pair<Term, Term>>
  impliedVarEqualities(const Conjunction &E) const override;
  std::optional<Term> alternate(const Conjunction &E, Term Var,
                                const std::vector<Term> &Avoid) const override;
  std::vector<std::pair<Term, Term>>
  alternateBatch(const Conjunction &E,
                 const std::vector<Term> &Targets) const override;

private:
  /// Rewrites sign atoms into the polyhedral language:
  /// positive(t) -> -t <= -1, negative(t) -> t <= -1.
  Conjunction lower(const Conjunction &E) const;
  std::optional<Atom> lowerAtom(const Atom &A) const;
  /// Extracts the expressible facts back out of a polyhedral element:
  /// the equalities, plus positive/negative per variable.
  Conjunction raise(const Conjunction &P) const;

  PolyDomain Poly;
  Symbol PositivePred, NegativePred;
};

} // namespace cai

#endif // CAI_DOMAINS_SIGN_SIGNDOMAIN_H
