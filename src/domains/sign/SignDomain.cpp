//===- domains/sign/SignDomain.cpp - The sign domain -----------------------===//

#include "domains/sign/SignDomain.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

using namespace cai;

std::optional<Atom> SignDomain::lowerAtom(const Atom &A) const {
  TermContext &Ctx = context();
  if (A.predicate() == Ctx.eqSymbol())
    return A;
  if (A.predicate() == PositivePred) {
    // t >= 1  ==>  1 - t <= 0  ==>  1 <= t.
    return Atom::mkLe(Ctx, Ctx.mkNum(1), A.args()[0]);
  }
  if (A.predicate() == NegativePred)
    return Atom::mkLe(Ctx, A.args()[0], Ctx.mkNum(-1));
  return std::nullopt;
}

Conjunction SignDomain::lower(const Conjunction &E) const {
  if (E.isBottom())
    return E;
  Conjunction Out;
  for (const Atom &A : E.atoms())
    if (std::optional<Atom> L = lowerAtom(A))
      Out.add(*L);
  return Out;
}

Conjunction SignDomain::raise(const Conjunction &P) const {
  if (P.isBottom())
    return P;
  TermContext &Ctx = context();
  Conjunction Out;
  // Keep the equalities verbatim.
  for (const Atom &A : P.atoms())
    if (A.predicate() == Ctx.eqSymbol())
      Out.add(A);
  // Per variable, ask the polyhedron for an expressible sign fact.
  for (Term V : P.vars()) {
    if (Poly.entails(P, Atom::mkLe(Ctx, Ctx.mkNum(1), V)))
      Out.add(Atom(PositivePred, {V}));
    else if (Poly.entails(P, Atom::mkLe(Ctx, V, Ctx.mkNum(-1))))
      Out.add(Atom(NegativePred, {V}));
  }
  return Out;
}

Conjunction SignDomain::join(const Conjunction &A,
                             const Conjunction &B) const {
  CAI_TRACE_SPAN("sign.join", "domain");
  CAI_METRIC_INC("domain.sign.joins");
  if (A.isBottom() || isUnsat(A))
    return B;
  if (B.isBottom() || isUnsat(B))
    return A;
  return raise(Poly.join(lower(A), lower(B)));
}

Conjunction SignDomain::existQuant(const Conjunction &E,
                                   const std::vector<Term> &Vars) const {
  if (E.isBottom())
    return E;
  return raise(Poly.existQuant(lower(E), Vars));
}

bool SignDomain::entails(const Conjunction &E, const Atom &A) const {
  if (E.isBottom())
    return true;
  if (A.isTrivial(context()))
    return true;
  std::optional<Atom> L = lowerAtom(A);
  if (!L)
    return false;
  return Poly.entails(lower(E), *L);
}

bool SignDomain::isUnsat(const Conjunction &E) const {
  if (E.isBottom())
    return true;
  return Poly.isUnsat(lower(E));
}

std::vector<std::pair<Term, Term>>
SignDomain::impliedVarEqualities(const Conjunction &E) const {
  if (E.isBottom())
    return {};
  return Poly.impliedVarEqualities(lower(E));
}

std::optional<Term>
SignDomain::alternate(const Conjunction &E, Term Var,
                      const std::vector<Term> &Avoid) const {
  if (E.isBottom())
    return std::nullopt;
  return Poly.alternate(lower(E), Var, Avoid);
}

std::vector<std::pair<Term, Term>>
SignDomain::alternateBatch(const Conjunction &E,
                           const std::vector<Term> &Targets) const {
  if (E.isBottom())
    return {};
  return Poly.alternateBatch(lower(E), Targets);
}
