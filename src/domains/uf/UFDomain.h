//===- domains/uf/UFDomain.h - Uninterpreted functions domain ---*- C++ -*-===//
///
/// \file
/// The logical lattice over the theory of uninterpreted functions /
/// Herbrand equivalences (the global-value-numbering domain of the paper's
/// examples).  Elements are conjunctions of equalities between terms built
/// from variables and uninterpreted function applications.
///
/// By default the domain claims every non-arithmetic function symbol; an
/// exclusion list lets a nested product cede specific symbols (car, cdr,
/// cons) to another component.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_DOMAINS_UF_UFDOMAIN_H
#define CAI_DOMAINS_UF_UFDOMAIN_H

#include "theory/LogicalLattice.h"

#include <set>

namespace cai {

/// The uninterpreted-function (Herbrand equivalence) domain.
class UFDomain : public LogicalLattice {
public:
  /// \p ExcludedFunctions are function symbols this instance does NOT
  /// claim (so another lattice in a product can own them).
  /// \p WidenDepthCap bounds the depth of terms surviving widening; the UF
  /// join alone does not force stabilization when a loop keeps growing
  /// terms (x := F(x)), so widening prunes deep equalities.
  explicit UFDomain(TermContext &Ctx, std::set<Symbol> ExcludedFunctions = {},
                    unsigned WidenDepthCap = 16)
      : LogicalLattice(Ctx), Excluded(std::move(ExcludedFunctions)),
        WidenDepthCap(WidenDepthCap) {}

  std::string name() const override { return "uf"; }

  bool ownsFunction(Symbol S) const override {
    if (context().info(S).Arithmetic)
      return false;
    return Excluded.count(S) == 0;
  }
  bool ownsPredicate(Symbol) const override { return false; }
  bool ownsNumerals() const override { return false; }

  Conjunction join(const Conjunction &A, const Conjunction &B) const override;
  Conjunction existQuant(const Conjunction &E,
                         const std::vector<Term> &Vars) const override;
  bool entails(const Conjunction &E, const Atom &A) const override;
  /// Conjunctions of equalities are always satisfiable in UF.
  bool isUnsat(const Conjunction &E) const override { return E.isBottom(); }
  std::vector<std::pair<Term, Term>>
  impliedVarEqualities(const Conjunction &E) const override;
  std::optional<Term> alternate(const Conjunction &E, Term Var,
                                const std::vector<Term> &Avoid) const override;
  std::vector<std::pair<Term, Term>>
  alternateBatch(const Conjunction &E,
                 const std::vector<Term> &Targets) const override;
  Conjunction widen(const Conjunction &Old,
                    const Conjunction &New) const override;

private:
  std::set<Symbol> Excluded;
  unsigned WidenDepthCap;
};

} // namespace cai

#endif // CAI_DOMAINS_UF_UFDOMAIN_H
