//===- domains/uf/CongruenceClosure.h - Congruence closure ------*- C++ -*-===//
///
/// \file
/// Congruence closure over hash-consed terms: union-find plus a signature
/// table, the decision procedure for the theory of uninterpreted functions
/// (and, with the projection rules layered on by the list domain, for the
/// theory of lists).  This is the E-DAG the paper's UF lattice operations
/// are built on.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_DOMAINS_UF_CONGRUENCECLOSURE_H
#define CAI_DOMAINS_UF_CONGRUENCECLOSURE_H

#include "term/Conjunction.h"

#include <unordered_map>

namespace cai {

/// A growable congruence-closed E-graph.
///
/// Nodes are created per distinct subterm via addTerm; equalities are
/// asserted with addEquality and congruence is restored eagerly, so
/// queries (find/areEqual) are always exact for the facts added so far.
class CongruenceClosure {
public:
  explicit CongruenceClosure(const TermContext &Ctx) : Ctx(Ctx) {}

  /// Adds \p T and all its subterms; returns T's node.
  unsigned addTerm(Term T);

  /// Asserts A = B (adding both terms if needed) and restores congruence.
  void addEquality(Term A, Term B);

  /// Loads every equality atom of \p E (other atoms are ignored, which is
  /// the sound over-approximation for a theory that only speaks equality).
  void addConjunction(const Conjunction &E);

  bool hasTerm(Term T) const { return NodeOf.count(T) != 0; }

  /// Class representative of node \p N (path-compressing).
  unsigned find(unsigned N) const;

  /// True if both terms are present and congruent.  Terms are added on
  /// demand, which cannot change existing congruences.
  bool areEqual(Term A, Term B);

  unsigned numNodes() const { return static_cast<unsigned>(Terms.size()); }
  Term termOf(unsigned N) const { return Terms[N]; }
  bool isApp(unsigned N) const { return Terms[N]->isApp(); }
  Symbol symbolOf(unsigned N) const { return Terms[N]->symbol(); }
  /// Argument nodes of an App node (original nodes, not class reps).
  const std::vector<unsigned> &argsOf(unsigned N) const {
    assert(isApp(N) && "argsOf on a leaf node");
    return Args[N];
  }

  /// Merges the classes of two nodes and restores congruence (exposed so
  /// theory-specific rewrite rules, e.g. the list projections, can drive
  /// extra merges).
  void merge(unsigned A, unsigned B);

  /// All congruence classes: representative -> members, deterministically
  /// ordered by node index.
  std::vector<std::vector<unsigned>> allClasses() const;

  const TermContext &context() const { return Ctx; }

private:
  /// Adds \p T and its subterms without restoring congruence; sets Pending
  /// when a new App node (which may complete a congruence) appears.
  unsigned addTermImpl(Term T);
  /// Merges two classes without restoring congruence; returns true if the
  /// classes were distinct.  The representative is always the smallest node
  /// index in the class, so the final partition is independent of the
  /// order in which a batch of merges is applied.
  bool unionClasses(unsigned A, unsigned B);
  /// Runs the deferred propagate(), if any merges or App nodes are pending.
  void flush();
  /// Restores congruence by fixpoint over the signature table.
  void propagate();

  const TermContext &Ctx;
  bool Pending = false;
  std::vector<Term> Terms;                 // Node -> term.
  std::vector<std::vector<unsigned>> Args; // Node -> argument nodes.
  mutable std::vector<unsigned> Parent;    // Union-find.
  std::unordered_map<Term, unsigned> NodeOf;
};

} // namespace cai

#endif // CAI_DOMAINS_UF_CONGRUENCECLOSURE_H
