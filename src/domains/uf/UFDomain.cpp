//===- domains/uf/UFDomain.cpp - Uninterpreted functions domain ------------===//

#include "domains/uf/UFDomain.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include "domains/uf/CongruenceClosure.h"
#include "domains/uf/UFJoin.h"

#include <algorithm>

using namespace cai;

Conjunction UFDomain::join(const Conjunction &A, const Conjunction &B) const {
  CAI_TRACE_SPAN("uf.join", "domain");
  CAI_METRIC_INC("domain.uf.joins");
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  CongruenceClosure CC1(context()), CC2(context());
  CC1.addConjunction(A);
  CC2.addConjunction(B);
  std::vector<Term> Shared = A.vars();
  for (Term V : B.vars())
    Shared.push_back(V);
  std::sort(Shared.begin(), Shared.end(), TermStructLess());
  Shared.erase(std::unique(Shared.begin(), Shared.end()), Shared.end());
  return ufJoinClosed(context(), CC1, CC2, Shared);
}

Conjunction UFDomain::existQuant(const Conjunction &E,
                                 const std::vector<Term> &Vars) const {
  if (E.isBottom())
    return E;
  CongruenceClosure CC(context());
  CC.addConjunction(E);
  // Make sure every surviving variable is present so var = var facts are
  // never lost just because a variable only occurred inside a killed term.
  for (Term V : E.vars())
    CC.addTerm(V);
  return ufProjectClosed(context(), CC, Vars);
}

bool UFDomain::entails(const Conjunction &E, const Atom &A) const {
  if (E.isBottom())
    return true;
  if (A.isTrivial(context()))
    return true;
  if (A.predicate() != context().eqSymbol())
    return false;
  CongruenceClosure CC(context());
  CC.addConjunction(E);
  return CC.areEqual(A.lhs(), A.rhs());
}

std::vector<std::pair<Term, Term>>
UFDomain::impliedVarEqualities(const Conjunction &E) const {
  std::vector<std::pair<Term, Term>> Out;
  if (E.isBottom())
    return Out;
  CongruenceClosure CC(context());
  CC.addConjunction(E);
  for (const std::vector<unsigned> &Class : CC.allClasses()) {
    Term Leader = nullptr;
    for (unsigned N : Class) {
      Term T = CC.termOf(N);
      if (!T->isVariable())
        continue;
      if (!Leader)
        Leader = T;
      else
        Out.emplace_back(Leader, T);
    }
  }
  return Out;
}

std::optional<Term> UFDomain::alternate(const Conjunction &E, Term Var,
                                        const std::vector<Term> &Avoid) const {
  if (E.isBottom())
    return std::nullopt;
  CongruenceClosure CC(context());
  CC.addConjunction(E);
  return ufAlternateClosed(context(), CC, Var, Avoid);
}

std::vector<std::pair<Term, Term>>
UFDomain::alternateBatch(const Conjunction &E,
                         const std::vector<Term> &Targets) const {
  if (E.isBottom())
    return {};
  CongruenceClosure CC(context());
  CC.addConjunction(E);
  return ufAlternateBatchClosed(context(), CC, Targets);
}

Conjunction UFDomain::widen(const Conjunction &Old,
                            const Conjunction &New) const {
  Conjunction Joined = join(Old, New);
  if (Joined.isBottom())
    return Joined;
  // Drop equalities over terms deeper than the cap; the remaining chain is
  // finite, so widening terminates even for loops like x := F(x).
  Conjunction Out;
  for (const Atom &A : Joined.atoms()) {
    bool TooDeep = false;
    for (Term Arg : A.args())
      TooDeep |= termDepth(Arg) > WidenDepthCap;
    if (!TooDeep)
      Out.add(A);
  }
  return Out;
}
