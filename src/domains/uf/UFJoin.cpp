//===- domains/uf/UFJoin.cpp - E-graph join and projection -----------------===//

#include "domains/uf/UFJoin.h"

#include <algorithm>
#include <map>

using namespace cai;

namespace {

/// One node of the product E-graph: a pair of component classes.
struct ProductNode {
  std::vector<Term> Vars; ///< Variables naming this node, id-ordered.
  /// Congruence definitions: (symbol, child product nodes), deduplicated.
  std::vector<std::pair<Symbol, std::vector<unsigned>>> Defs;
  Term Rep = nullptr; ///< Extracted representative term, if any.
};

/// The product construction shared by join.
class ProductGraph {
public:
  ProductGraph(TermContext &Ctx, CongruenceClosure &CC1,
               CongruenceClosure &CC2)
      : Ctx(Ctx), CC1(CC1), CC2(CC2) {}

  /// Seeds the product with leaf terms known to both sides: the shared
  /// variables plus every numeral (numerals are shared constants and must
  /// seed pairs, or F(1) joined with F(1) would be lost).
  void seedLeaves(const std::vector<Term> &Vars) {
    std::vector<Term> Leaves = Vars;
    for (unsigned N = 0; N < CC1.numNodes(); ++N)
      if (CC1.termOf(N)->isNumber())
        Leaves.push_back(CC1.termOf(N));
    for (unsigned N = 0; N < CC2.numNodes(); ++N)
      if (CC2.termOf(N)->isNumber())
        Leaves.push_back(CC2.termOf(N));
    std::sort(Leaves.begin(), Leaves.end(), TermStructLess());
    Leaves.erase(std::unique(Leaves.begin(), Leaves.end()), Leaves.end());
    for (Term V : Leaves) {
      unsigned N1 = CC1.addTerm(V), N2 = CC2.addTerm(V);
      unsigned P = getOrCreate(CC1.find(N1), CC2.find(N2));
      Nodes[P].Vars.push_back(V);
    }
    for (ProductNode &P : Nodes)
      std::sort(P.Vars.begin(), P.Vars.end(), TermStructLess());
  }

  /// Saturates congruence: a pair of same-symbol applications whose
  /// argument pairs are all product nodes induces a product node with a
  /// definition edge.
  void saturate() {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned U1 = 0; U1 < CC1.numNodes(); ++U1) {
        if (!CC1.isApp(U1))
          continue;
        for (unsigned U2 = 0; U2 < CC2.numNodes(); ++U2) {
          if (!CC2.isApp(U2) || CC2.symbolOf(U2) != CC1.symbolOf(U1))
            continue;
          const std::vector<unsigned> &A1 = CC1.argsOf(U1);
          const std::vector<unsigned> &A2 = CC2.argsOf(U2);
          if (A1.size() != A2.size())
            continue;
          std::vector<unsigned> Children;
          Children.reserve(A1.size());
          bool AllPresent = true;
          for (size_t I = 0; I < A1.size() && AllPresent; ++I) {
            auto It = Ids.find({CC1.find(A1[I]), CC2.find(A2[I])});
            if (It == Ids.end())
              AllPresent = false;
            else
              Children.push_back(It->second);
          }
          if (!AllPresent)
            continue;
          auto Key = std::make_pair(CC1.find(U1), CC2.find(U2));
          auto It = Ids.find(Key);
          unsigned P;
          if (It == Ids.end()) {
            P = getOrCreate(Key.first, Key.second);
            Changed = true;
          } else {
            P = It->second;
          }
          std::pair<Symbol, std::vector<unsigned>> Def{CC1.symbolOf(U1),
                                                       std::move(Children)};
          auto &Defs = Nodes[P].Defs;
          if (std::find(Defs.begin(), Defs.end(), Def) == Defs.end()) {
            Defs.push_back(std::move(Def));
            Changed = true;
          }
        }
      }
    }
  }

  /// Assigns each node a representative term by least fixpoint: a variable
  /// if one names the node, else any definition whose children already
  /// have representatives (round order yields minimum depth).  Nodes on
  /// purely cyclic definitions (e.g. the class of u = F(u) joined against
  /// a var-free cycle) stay unrepresented and are dropped.
  void extractReps() {
    for (ProductNode &P : Nodes)
      if (!P.Vars.empty())
        P.Rep = P.Vars.front();
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (ProductNode &P : Nodes) {
        if (P.Rep)
          continue;
        for (const auto &[Sym, Children] : P.Defs) {
          std::vector<Term> ArgReps;
          if (!childReps(Children, ArgReps))
            continue;
          P.Rep = Ctx.mkApp(Sym, std::move(ArgReps));
          Changed = true;
          break;
        }
      }
    }
  }

  /// Emits the joined facts: every naming of a node equals its
  /// representative.
  Conjunction emit() {
    Conjunction Out;
    for (ProductNode &P : Nodes) {
      if (!P.Rep)
        continue;
      for (Term V : P.Vars)
        if (V != P.Rep)
          Out.add(Atom::mkEq(Ctx, V, P.Rep));
      for (const auto &[Sym, Children] : P.Defs) {
        std::vector<Term> ArgReps;
        if (!childReps(Children, ArgReps))
          continue;
        Term T = Ctx.mkApp(Sym, std::move(ArgReps));
        if (T != P.Rep)
          Out.add(Atom::mkEq(Ctx, T, P.Rep));
      }
    }
    return Out;
  }

private:
  unsigned getOrCreate(unsigned R1, unsigned R2) {
    auto [It, Inserted] =
        Ids.emplace(std::make_pair(R1, R2), static_cast<unsigned>(Nodes.size()));
    if (Inserted)
      Nodes.emplace_back();
    return It->second;
  }

  bool childReps(const std::vector<unsigned> &Children,
                 std::vector<Term> &Out) const {
    Out.clear();
    Out.reserve(Children.size());
    for (unsigned C : Children) {
      if (!Nodes[C].Rep)
        return false;
      Out.push_back(Nodes[C].Rep);
    }
    return true;
  }

  TermContext &Ctx;
  CongruenceClosure &CC1;
  CongruenceClosure &CC2;
  std::vector<ProductNode> Nodes;
  std::map<std::pair<unsigned, unsigned>, unsigned> Ids;
};

} // namespace

Conjunction cai::ufJoinClosed(TermContext &Ctx, CongruenceClosure &CC1,
                              CongruenceClosure &CC2,
                              const std::vector<Term> &SharedVars) {
  ProductGraph G(Ctx, CC1, CC2);
  G.seedLeaves(SharedVars);
  G.saturate();
  G.extractReps();
  return G.emit();
}

namespace {

/// Shared machinery for projection and Alternate: per-class representative
/// terms built only from allowed leaves.
class Extractor {
public:
  Extractor(TermContext &Ctx, CongruenceClosure &CC,
            const std::vector<Term> &ForbiddenVars)
      : Ctx(Ctx), CC(CC) {
    for (Term V : ForbiddenVars)
      Forbidden.push_back(V);
    computeReps();
  }

  /// Representative of the class of node \p N, or nullptr.
  Term repOfClass(unsigned N) const {
    auto It = Reps.find(CC.find(N));
    return It == Reps.end() ? nullptr : It->second;
  }

  /// Extraction of node \p N itself (leaf term or symbol applied to child
  /// class representatives), or nullptr.
  Term extractionOf(unsigned N) const {
    Term T = CC.termOf(N);
    if (!T->isApp())
      return allowedLeaf(T) ? T : nullptr;
    std::vector<Term> ArgReps;
    ArgReps.reserve(CC.argsOf(N).size());
    for (unsigned Arg : CC.argsOf(N)) {
      Term R = repOfClass(Arg);
      if (!R)
        return nullptr;
      ArgReps.push_back(R);
    }
    return Ctx.mkApp(T->symbol(), std::move(ArgReps));
  }

private:
  bool allowedLeaf(Term T) const {
    if (T->isNumber())
      return true;
    if (!T->isVariable())
      return false;
    return std::find(Forbidden.begin(), Forbidden.end(), T) ==
           Forbidden.end();
  }

  void computeReps() {
    // Round 0: allowed leaves name their classes.  Numerals outrank
    // variables (a ground constant is the canonical name of its class);
    // ties break on the structural order, so the choice is deterministic
    // and independent of interning history.
    for (unsigned N = 0; N < CC.numNodes(); ++N) {
      Term T = CC.termOf(N);
      if (T->isApp() || !allowedLeaf(T))
        continue;
      Term &Slot = Reps[CC.find(N)];
      if (!Slot || (T->isNumber() && !Slot->isNumber()) ||
          (T->isNumber() == Slot->isNumber() && structuralCompare(T, Slot) < 0))
        Slot = T;
    }
    // Later rounds: applications whose child classes are represented.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned N = 0; N < CC.numNodes(); ++N) {
        if (!CC.isApp(N) || Reps.count(CC.find(N)))
          continue;
        Term T = extractionOf(N);
        if (!T)
          continue;
        Reps[CC.find(N)] = T;
        Changed = true;
      }
    }
  }

  TermContext &Ctx;
  CongruenceClosure &CC;
  std::vector<Term> Forbidden;
  std::map<unsigned, Term> Reps;
};

} // namespace

Conjunction cai::ufProjectClosed(TermContext &Ctx, CongruenceClosure &CC,
                                 const std::vector<Term> &Eliminate) {
  Extractor X(Ctx, CC, Eliminate);
  Conjunction Out;
  for (unsigned N = 0; N < CC.numNodes(); ++N) {
    Term Rep = X.repOfClass(N);
    if (!Rep)
      continue;
    Term Mine = X.extractionOf(N);
    if (Mine && Mine != Rep)
      Out.add(Atom::mkEq(Ctx, Mine, Rep));
  }
  return Out;
}

std::optional<Term> cai::ufAlternateClosed(TermContext &Ctx,
                                           CongruenceClosure &CC, Term Var,
                                           const std::vector<Term> &Avoid) {
  unsigned N = CC.addTerm(Var);
  std::vector<Term> Forbidden = Avoid;
  Forbidden.push_back(Var);
  Extractor X(Ctx, CC, Forbidden);
  Term Rep = X.repOfClass(N);
  if (!Rep)
    return std::nullopt;
  return Rep;
}

std::vector<std::pair<Term, Term>>
cai::ufAlternateBatchClosed(TermContext &Ctx, CongruenceClosure &CC,
                            const std::vector<Term> &Targets) {
  std::vector<std::pair<Term, Term>> Out;
  std::vector<unsigned> Nodes;
  Nodes.reserve(Targets.size());
  for (Term V : Targets)
    Nodes.push_back(CC.addTerm(V));
  Extractor X(Ctx, CC, Targets);
  for (size_t I = 0; I < Targets.size(); ++I)
    if (Term Rep = X.repOfClass(Nodes[I]))
      Out.emplace_back(Targets[I], Rep);
  return Out;
}
