//===- domains/uf/UFJoin.h - E-graph join and projection ---------*- C++ -*-===//
///
/// \file
/// The lattice operations of the uninterpreted-function logical lattice,
/// phrased over congruence-closed E-graphs:
///
///  * ufJoinClosed    -- the join via the product-automaton construction of
///                       Gulwani-Tiwari-Necula (FSTTCS'04) / the strong
///                       equivalence DAG join of global value numbering:
///                       product classes are pairs of component classes,
///                       congruence edges are intersected, and only classes
///                       with a finite representative term are emitted.
///  * ufProjectClosed -- existential quantification: keep exactly the facts
///                       expressible without the eliminated variables.
///  * ufAlternateClosed -- Alternate_T for UF (a representative term for a
///                       variable's class avoiding a variable set).
///
/// The *Closed variants take prepared CongruenceClosure instances so the
/// list domain can inject its projection axioms before reusing them.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_DOMAINS_UF_UFJOIN_H
#define CAI_DOMAINS_UF_UFJOIN_H

#include "domains/uf/CongruenceClosure.h"

#include <optional>

namespace cai {

/// Join of two closed E-graphs.  \p SharedVars seeds the product nodes;
/// it should be the union of the variables of both inputs (variables known
/// to only one side contribute nothing, harmlessly).
Conjunction ufJoinClosed(TermContext &Ctx, CongruenceClosure &CC1,
                         CongruenceClosure &CC2,
                         const std::vector<Term> &SharedVars);

/// Strongest conjunction implied by the closed E-graph \p CC that avoids
/// every variable in \p Eliminate.
Conjunction ufProjectClosed(TermContext &Ctx, CongruenceClosure &CC,
                            const std::vector<Term> &Eliminate);

/// A term t with CC |= Var = t avoiding \p Avoid and Var, or nullopt.
std::optional<Term> ufAlternateClosed(TermContext &Ctx, CongruenceClosure &CC,
                                      Term Var,
                                      const std::vector<Term> &Avoid);

/// Batched Alternate: one representative-extraction pass that defines as
/// many of \p Targets as possible, each definition avoiding all targets.
std::vector<std::pair<Term, Term>>
ufAlternateBatchClosed(TermContext &Ctx, CongruenceClosure &CC,
                       const std::vector<Term> &Targets);

} // namespace cai

#endif // CAI_DOMAINS_UF_UFJOIN_H
