//===- domains/uf/CongruenceClosure.cpp - Congruence closure ---------------===//

#include "domains/uf/CongruenceClosure.h"

#include <map>

using namespace cai;

unsigned CongruenceClosure::addTerm(Term T) {
  auto It = NodeOf.find(T);
  if (It != NodeOf.end())
    return It->second;
  std::vector<unsigned> ArgNodes;
  if (T->isApp()) {
    ArgNodes.reserve(T->args().size());
    for (Term Arg : T->args())
      ArgNodes.push_back(addTerm(Arg));
  }
  unsigned N = static_cast<unsigned>(Terms.size());
  Terms.push_back(T);
  Args.push_back(std::move(ArgNodes));
  Parent.push_back(N);
  NodeOf.emplace(T, N);
  // A new App node may be congruent to an existing one right away.
  if (T->isApp())
    propagate();
  return N;
}

unsigned CongruenceClosure::find(unsigned N) const {
  assert(N < Parent.size() && "node out of range");
  while (Parent[N] != N) {
    Parent[N] = Parent[Parent[N]]; // Path halving.
    N = Parent[N];
  }
  return N;
}

void CongruenceClosure::merge(unsigned A, unsigned B) {
  unsigned RA = find(A), RB = find(B);
  if (RA == RB)
    return;
  // Deterministic representative: the smaller node index wins.
  if (RB < RA)
    std::swap(RA, RB);
  Parent[RB] = RA;
  propagate();
}

void CongruenceClosure::propagate() {
  // Fixpoint: rebuild the signature table and union any two App nodes with
  // identical (symbol, class-of-args) signatures.  Quadratic in the worst
  // case but the E-graphs in this library are small; correctness and
  // determinism matter more here than asymptotics.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::map<std::pair<uint32_t, std::vector<unsigned>>, unsigned> SigTable;
    for (unsigned N = 0; N < Terms.size(); ++N) {
      if (!Terms[N]->isApp())
        continue;
      std::vector<unsigned> Sig;
      Sig.reserve(Args[N].size());
      for (unsigned Arg : Args[N])
        Sig.push_back(find(Arg));
      auto [It, Inserted] =
          SigTable.emplace(std::make_pair(symbolOf(N).index(), std::move(Sig)),
                           N);
      if (Inserted)
        continue;
      unsigned RA = find(It->second), RB = find(N);
      if (RA == RB)
        continue;
      if (RB < RA)
        std::swap(RA, RB);
      Parent[RB] = RA;
      Changed = true;
    }
  }
}

void CongruenceClosure::addEquality(Term A, Term B) {
  unsigned NA = addTerm(A), NB = addTerm(B);
  merge(NA, NB);
}

void CongruenceClosure::addConjunction(const Conjunction &E) {
  if (E.isBottom())
    return;
  for (const Atom &A : E.atoms())
    if (A.predicate() == Ctx.eqSymbol())
      addEquality(A.lhs(), A.rhs());
}

bool CongruenceClosure::areEqual(Term A, Term B) {
  unsigned NA = addTerm(A), NB = addTerm(B);
  return find(NA) == find(NB);
}

std::vector<std::vector<unsigned>> CongruenceClosure::allClasses() const {
  std::map<unsigned, std::vector<unsigned>> ByRep;
  for (unsigned N = 0; N < Terms.size(); ++N)
    ByRep[find(N)].push_back(N);
  std::vector<std::vector<unsigned>> Out;
  Out.reserve(ByRep.size());
  for (auto &[Rep, Members] : ByRep)
    Out.push_back(std::move(Members));
  return Out;
}
