//===- domains/uf/CongruenceClosure.cpp - Congruence closure ---------------===//

#include "domains/uf/CongruenceClosure.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <map>

using namespace cai;

unsigned CongruenceClosure::addTermImpl(Term T) {
  auto It = NodeOf.find(T);
  if (It != NodeOf.end())
    return It->second;
  std::vector<unsigned> ArgNodes;
  if (T->isApp()) {
    ArgNodes.reserve(T->args().size());
    for (Term Arg : T->args())
      ArgNodes.push_back(addTermImpl(Arg));
  }
  unsigned N = static_cast<unsigned>(Terms.size());
  Terms.push_back(T);
  Args.push_back(std::move(ArgNodes));
  Parent.push_back(N);
  NodeOf.emplace(T, N);
  // A new App node may be congruent to an existing one right away.
  if (T->isApp())
    Pending = true;
  return N;
}

unsigned CongruenceClosure::addTerm(Term T) {
  unsigned N = addTermImpl(T);
  flush();
  return N;
}

unsigned CongruenceClosure::find(unsigned N) const {
  assert(N < Parent.size() && "node out of range");
  while (Parent[N] != N) {
    Parent[N] = Parent[Parent[N]]; // Path halving.
    N = Parent[N];
  }
  return N;
}

bool CongruenceClosure::unionClasses(unsigned A, unsigned B) {
  unsigned RA = find(A), RB = find(B);
  if (RA == RB)
    return false;
  // Deterministic representative: the smaller node index wins.
  if (RB < RA)
    std::swap(RA, RB);
  Parent[RB] = RA;
  return true;
}

void CongruenceClosure::merge(unsigned A, unsigned B) {
  if (unionClasses(A, B))
    Pending = true;
  flush();
}

void CongruenceClosure::flush() {
  if (!Pending)
    return;
  Pending = false;
  propagate();
}

namespace {
/// Signature of an App node: symbol index plus the class representatives of
/// its arguments.
struct NodeSig {
  uint32_t Symbol;
  std::vector<unsigned> ArgReps;
  bool operator==(const NodeSig &RHS) const {
    return Symbol == RHS.Symbol && ArgReps == RHS.ArgReps;
  }
};
struct NodeSigHash {
  size_t operator()(const NodeSig &S) const {
    uint64_t H = 0xcbf29ce484222325ull ^ S.Symbol;
    for (unsigned R : S.ArgReps) {
      H ^= R;
      H *= 0x100000001b3ull;
    }
    return static_cast<size_t>(H);
  }
};
} // namespace

void CongruenceClosure::propagate() {
  // Fixpoint: rebuild the signature table and union any two App nodes with
  // identical (symbol, class-of-args) signatures.  Quadratic in the worst
  // case but the E-graphs in this library are small; correctness and
  // determinism matter more here than asymptotics.
  CAI_TRACE_SPAN("cc.propagate", "uf");
  CAI_METRIC_INC("congruence_closure.propagations");
  CAI_METRIC_TIME("congruence_closure.propagate_us");
  bool Changed = true;
  std::unordered_map<NodeSig, unsigned, NodeSigHash> SigTable;
  while (Changed) {
    Changed = false;
    SigTable.clear();
    for (unsigned N = 0; N < Terms.size(); ++N) {
      if (!Terms[N]->isApp())
        continue;
      NodeSig Sig{symbolOf(N).index(), {}};
      Sig.ArgReps.reserve(Args[N].size());
      for (unsigned Arg : Args[N])
        Sig.ArgReps.push_back(find(Arg));
      auto [It, Inserted] = SigTable.emplace(std::move(Sig), N);
      if (Inserted)
        continue;
      Changed |= unionClasses(It->second, N);
    }
  }
}

void CongruenceClosure::addEquality(Term A, Term B) {
  unsigned NA = addTermImpl(A), NB = addTermImpl(B);
  if (unionClasses(NA, NB))
    Pending = true;
  flush();
}

void CongruenceClosure::addConjunction(const Conjunction &E) {
  if (E.isBottom())
    return;
  // Batch: load every equality, then restore congruence once.  The final
  // partition is the congruence closure of the asserted equalities either
  // way; deferring saves one signature-table fixpoint per atom.
  for (const Atom &A : E.atoms())
    if (A.predicate() == Ctx.eqSymbol()) {
      unsigned NA = addTermImpl(A.lhs()), NB = addTermImpl(A.rhs());
      if (unionClasses(NA, NB))
        Pending = true;
    }
  flush();
}

bool CongruenceClosure::areEqual(Term A, Term B) {
  unsigned NA = addTermImpl(A), NB = addTermImpl(B);
  flush();
  return find(NA) == find(NB);
}

std::vector<std::vector<unsigned>> CongruenceClosure::allClasses() const {
  std::map<unsigned, std::vector<unsigned>> ByRep;
  for (unsigned N = 0; N < Terms.size(); ++N)
    ByRep[find(N)].push_back(N);
  std::vector<std::vector<unsigned>> Out;
  Out.reserve(ByRep.size());
  for (auto &[Rep, Members] : ByRep)
    Out.push_back(std::move(Members));
  return Out;
}
