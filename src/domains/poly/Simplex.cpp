//===- domains/poly/Simplex.cpp - Exact rational LP ------------------------===//
///
/// Implementation notes.  Free variables are split x = u - v with
/// u, v >= 0; slacks turn A y <= b into equalities.  Phase 1 uses the
/// single-artificial-variable construction (Chvatal): maximize -x0 over
/// A y - x0 <= b, entering x0 against the most-negative right-hand side
/// makes the dictionary feasible immediately.  Bland's smallest-index rule
/// everywhere prevents cycling; with exact rationals this is a decision
/// procedure, not a numeric heuristic.
///
//===----------------------------------------------------------------------===//

#include "domains/poly/Simplex.h"

#include "domains/poly/LPCache.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cassert>
#include <optional>

using namespace cai;

namespace {

/// Tableau row: structural u/v pairs, slacks, artificial, rhs.  Simplex
/// tableaux for the analyzed systems are narrow; eight inline entries keep
/// small solves allocation-free and cost nothing when a wide row spills.
using TabRow = SmallVec<Rational, 8>;

/// Dense simplex tableau.
///
/// Column layout: [structural u/v pairs | slacks | artificial?][rhs].
/// Row i has basic variable Basis[i] with value T[i][Cols-1].
class Tableau {
public:
  Tableau(const std::vector<LinearConstraint> &Constraints, size_t NumVars,
          bool WithArtificial)
      : NumStructural(2 * NumVars), NumSlack(Constraints.size()),
        HasArtificial(WithArtificial) {
    size_t Rows = Constraints.size();
    Cols = NumStructural + NumSlack + (HasArtificial ? 1 : 0) + 1;
    // resize-in-place rather than assign(Rows, TabRow(Cols)): a prototype
    // row would be copy-constructed once per row, and those copies showed
    // up as a double-digit share of uncached solves under gprof.
    T.resize(Rows);
    for (TabRow &R : T)
      R.resize(Cols);
    Basis.resize(Rows);
    for (size_t I = 0; I < Rows; ++I) {
      const LinearConstraint &C = Constraints[I];
      assert(C.Coeffs.size() == NumVars && "constraint dimension mismatch");
      for (size_t V = 0; V < NumVars; ++V) {
        T[I][2 * V] = C.Coeffs[V];      // u part.
        T[I][2 * V + 1] = -C.Coeffs[V]; // v part.
      }
      T[I][NumStructural + I] = Rational(1); // Slack.
      if (HasArtificial)
        T[I][artificialCol()] = Rational(-1);
      T[I][Cols - 1] = C.Rhs;
      Basis[I] = NumStructural + I;
    }
    Objective.assign(Cols, Rational());
  }

  size_t artificialCol() const { return NumStructural + NumSlack; }
  size_t rhsCol() const { return Cols - 1; }
  size_t rows() const { return T.size(); }

  /// Dst -= Factor * Src elementwise, skipping zero source entries (a
  /// zero contributes nothing) and the multiply when Factor is +-1.
  void subtractScaled(TabRow &Dst, const Rational &Factor,
                      const TabRow &Src) const {
    bool Unit = Factor.isOne();
    for (size_t J = 0; J < Cols; ++J) {
      const Rational &S = Src[J];
      if (S.isZero())
        continue;
      if (Unit)
        Dst[J] -= S;
      else
        Dst[J] -= Factor * S;
    }
  }

  /// Sets the objective to maximize sum Obj[v] * x_v over the original free
  /// variables, rewritten over the current basis.
  void setObjective(const CoeffVec &Obj) {
    Objective.assign(Cols, Rational());
    for (size_t V = 0; V < Obj.size(); ++V) {
      Objective[2 * V] = Obj[V];
      Objective[2 * V + 1] = -Obj[V];
    }
    ObjectiveConstant = Rational();
    priceOut();
  }

  /// Sets the phase-1 objective: maximize -x0.
  void setPhase1Objective() {
    Objective.assign(Cols, Rational());
    Objective[artificialCol()] = Rational(-1);
    ObjectiveConstant = Rational();
    priceOut();
  }

  /// Rewrites the objective row so basic columns have zero reduced cost.
  void priceOut() {
    for (size_t I = 0; I < rows(); ++I) {
      const Rational &C = Objective[Basis[I]];
      if (C.isZero())
        continue;
      Rational Factor = C;
      subtractScaled(Objective, Factor, T[I]);
      ObjectiveConstant += Factor * T[I][rhsCol()];
    }
  }

  void pivot(size_t Row, size_t Col) {
    // Tableau rows are sparse (slack columns, eliminated structurals), so
    // every row operation skips zero source entries; exact rational ops are
    // expensive enough that the extra branch is pure profit.
    TabRow &PivotRow = T[Row];
    if (!PivotRow[Col].isOne()) {
      Rational Inv = PivotRow[Col].inverse();
      for (size_t J = 0; J < Cols; ++J)
        if (!PivotRow[J].isZero())
          PivotRow[J] *= Inv;
    }
    for (size_t I = 0; I < rows(); ++I) {
      if (I == Row || T[I][Col].isZero())
        continue;
      Rational Factor = T[I][Col];
      subtractScaled(T[I], Factor, PivotRow);
    }
    if (!Objective[Col].isZero()) {
      Rational Factor = Objective[Col];
      subtractScaled(Objective, Factor, PivotRow);
      ObjectiveConstant += Factor * PivotRow[rhsCol()];
    }
    Basis[Row] = Col;
  }

  /// Runs Bland-rule simplex on the current objective.
  /// Returns false if unbounded.
  bool optimize() {
    size_t DecisionCols = Cols - 1; // Everything but rhs.
    while (true) {
      // Entering: smallest-index column with positive reduced cost.
      size_t Enter = DecisionCols;
      for (size_t J = 0; J < DecisionCols; ++J)
        if (Objective[J].sign() > 0) {
          Enter = J;
          break;
        }
      if (Enter == DecisionCols)
        return true; // Optimal.
      // Leaving: minimum ratio, ties broken by smallest basic index.
      size_t Leave = rows();
      Rational BestRatio;
      for (size_t I = 0; I < rows(); ++I) {
        if (T[I][Enter].sign() <= 0)
          continue;
        Rational Ratio = T[I][rhsCol()] / T[I][Enter];
        if (Leave == rows() || Ratio < BestRatio ||
            (Ratio == BestRatio && Basis[I] < Basis[Leave])) {
          Leave = I;
          BestRatio = Ratio;
        }
      }
      if (Leave == rows())
        return false; // Unbounded.
      CAI_METRIC_INC("simplex.pivots");
      pivot(Leave, Enter);
    }
  }

  Rational objectiveValue() const { return ObjectiveConstant; }

  /// Values of the original free variables at the current basic solution.
  std::vector<Rational> point(size_t NumVars) const {
    TabRow Vals(Cols - 1);
    for (size_t I = 0; I < rows(); ++I)
      Vals[Basis[I]] = T[I][rhsCol()];
    std::vector<Rational> Out(NumVars);
    for (size_t V = 0; V < NumVars; ++V)
      Out[V] = Vals[2 * V] - Vals[2 * V + 1];
    return Out;
  }

  /// Phase-1 entry: pivot x0 in against the most negative rhs.
  void enterArtificial() {
    size_t Worst = rows();
    for (size_t I = 0; I < rows(); ++I)
      if (T[I][rhsCol()].sign() < 0 &&
          (Worst == rows() || T[I][rhsCol()] < T[Worst][rhsCol()]))
        Worst = I;
    assert(Worst != rows() && "enterArtificial needs a negative rhs");
    pivot(Worst, artificialCol());
  }

  bool anyNegativeRhs() const {
    for (size_t I = 0; I < rows(); ++I)
      if (T[I][rhsCol()].sign() < 0)
        return true;
    return false;
  }

  /// After a successful phase 1, forces x0 out of the basis if it sits
  /// there at value zero.
  void evictArtificial() {
    for (size_t I = 0; I < rows(); ++I) {
      if (Basis[I] != artificialCol())
        continue;
      assert(T[I][rhsCol()].isZero() && "artificial basic at nonzero value");
      for (size_t J = 0; J + 1 < Cols; ++J) {
        if (J == artificialCol() || T[I][J].isZero())
          continue;
        pivot(I, J);
        return;
      }
      // Row is all zero: harmless degenerate row; leave it.
      return;
    }
  }

  /// Zeroes the artificial column so later pivots cannot re-enter it.
  void freezeArtificial() {
    for (size_t I = 0; I < rows(); ++I)
      T[I][artificialCol()] = Rational();
    Objective[artificialCol()] = Rational();
  }

private:
  size_t NumStructural;
  size_t NumSlack;
  bool HasArtificial;
  size_t Cols;
  std::vector<TabRow> T;
  std::vector<size_t> Basis;
  TabRow Objective;
  Rational ObjectiveConstant;
};

/// Unconstrained system: any nonzero objective is unbounded.
LPResult unconstrainedResult(const CoeffVec &Objective,
                             size_t NumVars) {
  bool Zero = true;
  for (const Rational &C : Objective)
    Zero &= C.isZero();
  if (Zero)
    return {LPStatus::Optimal, Rational(), std::vector<Rational>(NumVars)};
  return {LPStatus::Unbounded, Rational(), {}};
}

/// One full two-phase solve, no cache.
LPResult solveFresh(const std::vector<LinearConstraint> &Constraints,
                    const CoeffVec &Objective, size_t NumVars) {
  CAI_METRIC_INC("simplex.solves");
  CAI_METRIC_TIME("simplex.solve_us");

  if (Constraints.empty())
    return unconstrainedResult(Objective, NumVars);

  Tableau Tab(Constraints, NumVars, /*WithArtificial=*/true);

  if (Tab.anyNegativeRhs()) {
    Tab.setPhase1Objective();
    Tab.enterArtificial();
    bool Bounded = Tab.optimize();
    assert(Bounded && "phase-1 objective is bounded by construction");
    (void)Bounded;
    if (!Tab.objectiveValue().isZero())
      return {LPStatus::Infeasible, Rational(), {}};
    Tab.evictArtificial();
  }
  Tab.freezeArtificial();

  Tab.setObjective(Objective);
  if (!Tab.optimize())
    return {LPStatus::Unbounded, Rational(), {}};
  return {LPStatus::Optimal, Tab.objectiveValue(), Tab.point(NumVars)};
}

} // namespace

LPResult cai::maximize(const std::vector<LinearConstraint> &Constraints,
                       const CoeffVec &Objective,
                       size_t NumVars) {
  assert(Objective.size() == NumVars && "objective dimension mismatch");
  CAI_TRACE_SPAN("simplex.maximize", "simplex");

  SimplexCache *Cache = SimplexCache::active();
  if (!Cache)
    return solveFresh(Constraints, Objective, NumVars);

  LPKey Key{canonicalRows(Constraints), Objective};
  if (const LPResult *Hit = Cache->lookup(Key)) {
    CAI_METRIC_INC("simplex.cache.hits");
    return *Hit;
  }
  CAI_METRIC_INC("simplex.cache.misses");
  LPResult R = solveFresh(Constraints, Objective, NumVars);
  Cache->insert(Key, R);
  return R;
}

bool cai::isFeasible(const std::vector<LinearConstraint> &Constraints,
                     size_t NumVars) {
  CoeffVec Zero(NumVars);
  return maximize(Constraints, Zero, NumVars).Status != LPStatus::Infeasible;
}

//===----------------------------------------------------------------------===//
// SimplexSolver: one system, many objectives.
//===----------------------------------------------------------------------===//

struct SimplexSolver::Impl {
  std::vector<LinearConstraint> Constraints;
  size_t NumVars;
  /// Canonical rows for cache keys, built on first cached query.
  std::optional<std::vector<LinearConstraint>> KeyRows;
  /// The pinned tableau; engaged after the first actual solve of a
  /// non-empty feasible system.
  std::optional<Tableau> Tab;
  bool Prepared = false;   ///< Phase 1 has run (or was not needed).
  bool Infeasible = false; ///< Phase 1 proved the system empty.
  bool SolvedOnce = false; ///< A phase-2 basis exists to warm-start from.

  Impl(std::vector<LinearConstraint> Constraints, size_t NumVars)
      : Constraints(std::move(Constraints)), NumVars(NumVars) {}

  /// Phase 1, run once per system.
  void prepare() {
    Prepared = true;
    if (Constraints.empty())
      return;
    Tab.emplace(Constraints, NumVars, /*WithArtificial=*/true);
    if (Tab->anyNegativeRhs()) {
      Tab->setPhase1Objective();
      Tab->enterArtificial();
      bool Bounded = Tab->optimize();
      assert(Bounded && "phase-1 objective is bounded by construction");
      (void)Bounded;
      if (!Tab->objectiveValue().isZero()) {
        Infeasible = true;
        return;
      }
      Tab->evictArtificial();
    }
    Tab->freezeArtificial();
  }

  LPResult solve(const CoeffVec &Objective) {
    CAI_METRIC_INC("simplex.solves");
    CAI_METRIC_TIME("simplex.solve_us");
    if (!Prepared)
      prepare();
    if (Constraints.empty())
      return unconstrainedResult(Objective, NumVars);
    if (Infeasible)
      return {LPStatus::Infeasible, Rational(), {}};
    if (SolvedOnce) {
      // Re-enter phase 2 from the previous optimal basis: the basis stays
      // primal feasible under any objective change, so no phase 1 rerun.
      CAI_METRIC_INC("simplex.warmstart");
    }
    SolvedOnce = true;
    Tab->setObjective(Objective);
    if (!Tab->optimize())
      return {LPStatus::Unbounded, Rational(), {}};
    return {LPStatus::Optimal, Tab->objectiveValue(), Tab->point(NumVars)};
  }
};

SimplexSolver::SimplexSolver(std::vector<LinearConstraint> Constraints,
                             size_t NumVars)
    : I(std::make_unique<Impl>(std::move(Constraints), NumVars)) {}

SimplexSolver::~SimplexSolver() = default;
SimplexSolver::SimplexSolver(SimplexSolver &&) noexcept = default;
SimplexSolver &SimplexSolver::operator=(SimplexSolver &&) noexcept = default;

LPResult SimplexSolver::maximize(const CoeffVec &Objective) {
  assert(Objective.size() == I->NumVars && "objective dimension mismatch");
  CAI_TRACE_SPAN("simplex.maximize", "simplex");

  SimplexCache *Cache = SimplexCache::active();
  if (!Cache)
    return I->solve(Objective);

  if (!I->KeyRows)
    I->KeyRows = canonicalRows(I->Constraints);
  LPKey Key{*I->KeyRows, Objective};
  if (const LPResult *Hit = Cache->lookup(Key)) {
    CAI_METRIC_INC("simplex.cache.hits");
    return *Hit;
  }
  CAI_METRIC_INC("simplex.cache.misses");
  LPResult R = I->solve(Objective);
  Cache->insert(Key, R);
  return R;
}
