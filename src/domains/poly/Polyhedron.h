//===- domains/poly/Polyhedron.h - Constraint-form polyhedra ----*- C++ -*-===//
///
/// \file
/// Convex polyhedra in constraint form over dense column indices:
/// Fourier-Motzkin projection, convex hull of two polyhedra (via the
/// lifted lambda-combination projected back down), implicit-equality
/// detection (the affine hull), entailment and redundancy removal through
/// the exact simplex.  The PolyDomain wraps this with the term <-> column
/// mapping.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_DOMAINS_POLY_POLYHEDRON_H
#define CAI_DOMAINS_POLY_POLYHEDRON_H

#include "domains/poly/Simplex.h"

#include <optional>

namespace cai {

/// A polyhedron {x : C x <= d} over a fixed number of columns.
class Polyhedron {
public:
  explicit Polyhedron(size_t NumVars) : NumVars(NumVars) {}

  size_t numVars() const { return NumVars; }
  const std::vector<LinearConstraint> &constraints() const { return Rows; }

  /// Adds Coeffs . x <= Rhs.
  void addLe(std::vector<Rational> Coeffs, Rational Rhs);
  /// Adds Coeffs . x = Rhs (two inequalities).
  void addEq(const std::vector<Rational> &Coeffs, const Rational &Rhs);

  bool isEmpty() const;

  /// Does every point satisfy Coeffs . x <= Rhs?
  bool entailsLe(const std::vector<Rational> &Coeffs,
                 const Rational &Rhs) const;
  bool entailsEq(const std::vector<Rational> &Coeffs,
                 const Rational &Rhs) const;

  /// Existentially quantifies the columns marked true (Fourier-Motzkin,
  /// equality substitution first, light redundancy pruning).
  Polyhedron project(const std::vector<bool> &Eliminate) const;

  /// Convex hull (topological closure) of the union.  Either operand may
  /// be empty, in which case the other is returned.
  static Polyhedron hull(const Polyhedron &A, const Polyhedron &B);

  /// All implied equalities as rows (Coeffs, Rhs): the explicit ones plus
  /// every inequality that holds with equality on the whole polyhedron.
  /// Undefined on empty polyhedra (callers check isEmpty first).
  std::vector<LinearConstraint> affineHull() const;

  /// Removes constraints entailed by the remaining ones (quadratic number
  /// of LP calls; used to keep canonical output small).
  Polyhedron minimized() const;

  /// The CH78 widening: constraints of this polyhedron that \p Newer still
  /// entails.
  Polyhedron widen(const Polyhedron &Newer) const;

private:
  /// Divides each row by the gcd of its coefficients (keeps FM growth in
  /// check) and drops trivial rows; returns false if a trivially
  /// unsatisfiable row (0 <= negative) was found.
  bool normalizeRow(LinearConstraint &C) const;

  size_t NumVars;
  std::vector<LinearConstraint> Rows;
};

} // namespace cai

#endif // CAI_DOMAINS_POLY_POLYHEDRON_H
