//===- domains/poly/Polyhedron.h - Constraint-form polyhedra ----*- C++ -*-===//
///
/// \file
/// Convex polyhedra in constraint form over dense column indices:
/// Fourier-Motzkin projection, convex hull of two polyhedra (via the
/// lifted lambda-combination projected back down), implicit-equality
/// detection (the affine hull), entailment and redundancy removal through
/// the exact simplex.  The PolyDomain wraps this with the term <-> column
/// mapping.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_DOMAINS_POLY_POLYHEDRON_H
#define CAI_DOMAINS_POLY_POLYHEDRON_H

#include "domains/poly/Simplex.h"

#include <optional>

namespace cai {

/// Row-count cap for derived constraint systems: when Fourier-Motzkin
/// projection grows an intermediate system past the cap, the weakest
/// excess rows are havocked (dropped), which soundly over-approximates
/// the projection.  This is the termination backstop behind
/// `cai-analyze --poly-max-rows`; 0 disables the cap.  Metric-counted as
/// poly.havoc.events / poly.havoc.rows_dropped.
size_t polyRowCap();
void setPolyRowCap(size_t Cap);

/// The built-in default cap (also what --poly-max-rows=0 documents as
/// "unlimited" deviates from).
constexpr size_t DefaultPolyRowCap = 2048;

/// A polyhedron {x : C x <= d} over a fixed number of columns.
class Polyhedron {
public:
  explicit Polyhedron(size_t NumVars) : NumVars(NumVars) {}

  size_t numVars() const { return NumVars; }
  const std::vector<LinearConstraint> &constraints() const { return Rows; }

  /// Adds Coeffs . x <= Rhs.
  void addLe(CoeffVec Coeffs, Rational Rhs);
  /// Adds Coeffs . x = Rhs (two inequalities).
  void addEq(const CoeffVec &Coeffs, const Rational &Rhs);

  bool isEmpty() const;

  /// Does every point satisfy Coeffs . x <= Rhs?
  bool entailsLe(const CoeffVec &Coeffs, const Rational &Rhs) const;
  bool entailsEq(const CoeffVec &Coeffs, const Rational &Rhs) const;

  /// Existentially quantifies the columns marked true (Fourier-Motzkin,
  /// equality substitution first, light redundancy pruning).
  Polyhedron project(const std::vector<bool> &Eliminate) const;

  /// Convex hull (topological closure) of the union.  Either operand may
  /// be empty, in which case the other is returned.
  static Polyhedron hull(const Polyhedron &A, const Polyhedron &B);

  /// All implied equalities as rows (Coeffs, Rhs): the explicit ones plus
  /// every inequality that holds with equality on the whole polyhedron.
  /// Undefined on empty polyhedra (callers check isEmpty first).
  std::vector<LinearConstraint> affineHull() const;

  /// Removes constraints entailed by the remaining ones (quadratic number
  /// of LP calls; used to keep canonical output small).
  Polyhedron minimized() const;

  /// The CH78 widening: constraints of this polyhedron that \p Newer still
  /// entails.
  Polyhedron widen(const Polyhedron &Newer) const;

private:
  /// Divides each row by the gcd of its coefficients (keeps FM growth in
  /// check) and drops trivial rows; returns false if a trivially
  /// unsatisfiable row (0 <= negative) was found.
  bool normalizeRow(LinearConstraint &C) const;

  /// A working row of project(): the constraint plus the set of source
  /// rows it was derived from (bit I = row I of the system Kohler
  /// tracking last started from), the input to Kohler's redundancy
  /// criterion in the Fourier-Motzkin loop.
  struct TrackedRow {
    LinearConstraint C;
    uint64_t Hist = 0;
  };

  /// If \p Work contains an equality pair (a row and its exact negation)
  /// with a nonzero coefficient at \p Col, eliminates the column exactly
  /// by Gaussian substitution -- no Fourier-Motzkin row growth -- and
  /// returns true.  This is the path that keeps the lifted convex-hull
  /// systems (mostly equality pairs) from exploding.  Histories are left
  /// stale; project() resets Kohler tracking after every substitution.
  bool eliminateByEquality(std::vector<TrackedRow> &Work, size_t Col) const;

  size_t NumVars;
  std::vector<LinearConstraint> Rows;
};

} // namespace cai

#endif // CAI_DOMAINS_POLY_POLYHEDRON_H
