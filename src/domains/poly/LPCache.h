//===- domains/poly/LPCache.h - Memoized simplex queries --------*- C++ -*-===//
///
/// \file
/// A per-PolyDomain-instance cache of LP solves, mirroring for the simplex
/// what QueryCache does for LogicalLattice operations: the fixpoint engine
/// rebuilds the same polyhedra at every iteration, so the emptiness,
/// entailment and redundancy-elimination call sites in Polyhedron.cpp keep
/// re-solving near-identical LPs.  The key is the canonical form of the
/// query -- rows sorted lexicographically (addLe already normalizes each
/// row to integral coefficients with gcd 1) plus the objective -- so any
/// permutation of the same constraint system hits the same entry.  Keys
/// are stored in full and compared exactly; the fingerprint only buckets.
///
/// The cache is installed for the dynamic extent of one domain operation
/// through the RAII Scope (the same install discipline as obs::Tracer):
/// Polyhedron and Simplex stay free of domain back-references, and nested
/// products with several PolyDomain instances each see their own cache.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_DOMAINS_POLY_LPCACHE_H
#define CAI_DOMAINS_POLY_LPCACHE_H

#include "domains/poly/Simplex.h"
#include "support/QueryCache.h"

#include <vector>

namespace cai {

/// Strict lexicographic order on rows (coefficients, then rhs): the sort
/// key behind both the canonical LP fingerprint and the parallel-row
/// dedupe in Fourier-Motzkin projection.
bool rowLexLess(const LinearConstraint &A, const LinearConstraint &B);

/// Rows sorted into canonical key order.
std::vector<LinearConstraint> canonicalRows(std::vector<LinearConstraint> Rows);

/// One memoizable LP query: a canonical (sorted) constraint system plus
/// the objective row.
struct LPKey {
  std::vector<LinearConstraint> Rows;
  CoeffVec Objective;

  bool operator==(const LPKey &RHS) const {
    return Objective == RHS.Objective && Rows == RHS.Rows;
  }

  /// Fingerprint over the sorted rows and the objective.
  uint64_t fingerprint() const;
};

struct LPKeyHash {
  size_t operator()(const LPKey &K) const {
    return static_cast<size_t>(K.fingerprint());
  }
};

/// The LP memo cache.  cai::maximize and SimplexSolver consult the
/// installed instance; PolyDomain owns one per domain instance and
/// installs it (memoization permitting) for each lattice operation.
class SimplexCache {
public:
  explicit SimplexCache(size_t Capacity = 1 << 12) : Cache(Capacity) {}

  const LPResult *lookup(const LPKey &K) { return Cache.lookup(K); }
  void insert(const LPKey &K, LPResult R) { Cache.insert(K, std::move(R)); }
  const QueryCacheCounters &counters() const { return Cache.counters(); }
  size_t size() const { return Cache.size(); }
  void clear() { Cache.clear(); }

  /// The cache consulted by the simplex entry points, or nullptr when LP
  /// memoization is off (the --no-memo path).
  static SimplexCache *active();

  /// Installs \p C for the lifetime of the scope and restores the previous
  /// cache on destruction.  Installing nullptr explicitly disables LP
  /// memoization within the scope (a memoization-off domain must not feed
  /// an enclosing instance's cache).
  class Scope {
  public:
    explicit Scope(SimplexCache *C);
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    SimplexCache *Prev;
  };

private:
  QueryCache<LPKey, LPResult, LPKeyHash> Cache;
};

} // namespace cai

#endif // CAI_DOMAINS_POLY_LPCACHE_H
