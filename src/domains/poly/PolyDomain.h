//===- domains/poly/PolyDomain.h - Linear-inequality domain -----*- C++ -*-===//
///
/// \file
/// The logical lattice over the full theory of linear arithmetic
/// (signature {=, <=, +, -, 0, 1}): convex polyhedra in constraint form,
/// the domain of Cousot-Halbwachs.  Join is the convex hull, existential
/// quantification is Fourier-Motzkin, entailment is an exact-simplex LP,
/// and VE_T / Alternate_T go through the affine hull (implicit equalities)
/// and Gaussian elimination -- exactly the recipe Section 4.2 sketches.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_DOMAINS_POLY_POLYDOMAIN_H
#define CAI_DOMAINS_POLY_POLYDOMAIN_H

#include "domains/poly/LPCache.h"
#include "domains/poly/Polyhedron.h"
#include "term/LinearExpr.h"
#include "theory/LogicalLattice.h"

#include <map>

namespace cai {

/// The convex-polyhedra domain over linear arithmetic with inequalities.
class PolyDomain : public LogicalLattice {
public:
  explicit PolyDomain(TermContext &Ctx) : LogicalLattice(Ctx) {}

  std::string name() const override { return "poly"; }

  bool ownsFunction(Symbol) const override { return false; }
  bool ownsPredicate(Symbol S) const override {
    return S == context().leSymbol();
  }
  bool ownsNumerals() const override { return true; }

  Conjunction join(const Conjunction &A, const Conjunction &B) const override;
  Conjunction existQuant(const Conjunction &E,
                         const std::vector<Term> &Vars) const override;
  bool entails(const Conjunction &E, const Atom &A) const override;
  bool isUnsat(const Conjunction &E) const override;
  std::vector<std::pair<Term, Term>>
  impliedVarEqualities(const Conjunction &E) const override;
  std::optional<Term> alternate(const Conjunction &E, Term Var,
                                const std::vector<Term> &Avoid) const override;
  std::vector<std::pair<Term, Term>>
  alternateBatch(const Conjunction &E,
                 const std::vector<Term> &Targets) const override;
  Conjunction widen(const Conjunction &Old,
                    const Conjunction &New) const override;

  /// Adds the LP memo cache's counters on top of the lattice-level ones.
  void collectStats(LatticeStats &S) const override;

private:
  /// LP memo shared by every simplex query issued under this domain's
  /// operations (installed per-operation via SimplexCache::Scope, so the
  /// solver layer stays free of domain back-references).  Mutable for the
  /// same reason the LogicalLattice caches are: memoization is
  /// observation-invisible.
  mutable SimplexCache LPCache;

  /// Installs LPCache for one domain operation, or hard-disables LP
  /// memoization when the lattice runs with memoization off (the
  /// cache-equivalence contract: --no-memo must not consult any cache).
  SimplexCache::Scope lpScope() const {
    return SimplexCache::Scope(memoizationEnabled() ? &LPCache : nullptr);
  }

  /// Term <-> column mapping (same opaque-indeterminate discipline as the
  /// affine domain).
  struct Env {
    std::vector<Term> Columns;
    std::map<Term, size_t, TermStructLess> Index;
    void add(Term T);
    void addIndeterminates(const TermContext &Ctx, const Atom &A);
    void addIndeterminates(const TermContext &Ctx, const Conjunction &E);
  };

  Polyhedron toPoly(const Conjunction &E, const Env &Env) const;
  Conjunction fromPoly(const Polyhedron &P, const Env &Env) const;
  /// Emits \p P's rows verbatim (equality pairs as one equality atom), with
  /// no redundancy elimination.  Widening results go through this: the CH78
  /// operator keeps syntactic rows of the older operand, so canonicalizing
  /// a widened state can discard the very faces (for example 0 <= x made
  /// redundant by a transient equality) that the next widening round needs
  /// to see to keep them stable.
  Conjunction fromRowsVerbatim(const Polyhedron &P, const Env &Env) const;
  /// (Coeffs, Rhs, IsEquality) for a linear atom, or nullopt.
  std::optional<std::tuple<std::vector<Rational>, Rational, bool>>
  rowOf(const Atom &A, const Env &Env) const;
};

} // namespace cai

#endif // CAI_DOMAINS_POLY_POLYDOMAIN_H
