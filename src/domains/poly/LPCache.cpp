//===- domains/poly/LPCache.cpp - Memoized simplex queries -----------------===//

#include "domains/poly/LPCache.h"

#include "support/Hash.h"

#include <algorithm>

using namespace cai;

bool cai::rowLexLess(const LinearConstraint &A, const LinearConstraint &B) {
  if (A.Coeffs != B.Coeffs) {
    for (size_t I = 0; I < A.Coeffs.size() && I < B.Coeffs.size(); ++I)
      if (A.Coeffs[I] != B.Coeffs[I])
        return A.Coeffs[I] < B.Coeffs[I];
    return A.Coeffs.size() < B.Coeffs.size();
  }
  return A.Rhs < B.Rhs;
}

std::vector<LinearConstraint>
cai::canonicalRows(std::vector<LinearConstraint> Rows) {
  std::sort(Rows.begin(), Rows.end(), rowLexLess);
  return Rows;
}

uint64_t LPKey::fingerprint() const {
  uint64_t H = hashRange(Objective.begin(), Objective.end());
  for (const LinearConstraint &R : Rows) {
    H = hashCombine(H, hashRange(R.Coeffs.begin(), R.Coeffs.end()));
    H = hashCombine(H, R.Rhs.hash());
  }
  return H;
}

/// One analysis per thread (the QueryCache contract); thread_local so the
/// analysis service's sharded workers each scope their own cache.
static thread_local SimplexCache *ActiveCache = nullptr;

SimplexCache *SimplexCache::active() { return ActiveCache; }

SimplexCache::Scope::Scope(SimplexCache *C) : Prev(ActiveCache) {
  ActiveCache = C;
}

SimplexCache::Scope::~Scope() { ActiveCache = Prev; }
