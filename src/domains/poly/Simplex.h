//===- domains/poly/Simplex.h - Exact rational LP ----------------*- C++ -*-===//
///
/// \file
/// A two-phase primal simplex over exact rationals with Bland's rule
/// (guaranteed termination), for free variables and <= constraints.  This
/// is the decision procedure behind the polyhedra domain: satisfiability,
/// entailment of inequalities, and implicit-equality detection all reduce
/// to optimization calls.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_DOMAINS_POLY_SIMPLEX_H
#define CAI_DOMAINS_POLY_SIMPLEX_H

#include "support/Rational.h"
#include "support/SmallVec.h"

#include <memory>
#include <vector>

namespace cai {

/// Coefficient row of a constraint: one Rational per variable.  The
/// analyzed programs rarely scope more than a few numeric variables, so
/// four coefficients live inline; Fourier-Motzkin combination and simplex
/// row operations then run without touching the allocator (DESIGN.md,
/// "Three-tier exact arithmetic and small-vector rows").
using CoeffVec = SmallVec<Rational, 4>;

/// Outcome of an LP solve.
enum class LPStatus : uint8_t {
  Optimal,    ///< Bounded optimum found.
  Unbounded,  ///< Feasible but the objective is unbounded above.
  Infeasible, ///< No point satisfies the constraints.
};

/// Result of maximizing an objective over a polyhedron.
struct LPResult {
  LPStatus Status;
  Rational Value;              ///< Optimal objective value (when Optimal).
  std::vector<Rational> Point; ///< A maximizing point (when Optimal).
};

/// One linear constraint: Coeffs . x <= Rhs over free rational variables.
struct LinearConstraint {
  CoeffVec Coeffs;
  Rational Rhs;

  bool operator==(const LinearConstraint &RHS) const {
    return Rhs == RHS.Rhs && Coeffs == RHS.Coeffs;
  }
  bool operator!=(const LinearConstraint &RHS) const {
    return !(*this == RHS);
  }
};

/// Maximizes Objective . x subject to the constraints (all variables free).
/// \p NumVars fixes the dimension; every constraint and the objective must
/// have exactly that many coefficients.  Consults the installed
/// SimplexCache (see LPCache.h) before solving.
LPResult maximize(const std::vector<LinearConstraint> &Constraints,
                  const CoeffVec &Objective, size_t NumVars);

/// Convenience: is the constraint system satisfiable?
bool isFeasible(const std::vector<LinearConstraint> &Constraints,
                size_t NumVars);

/// A simplex instance pinned to one constraint system, for call sites that
/// query many objectives against it (the affine hull asks one LP per row;
/// the CH78 widening one entailment per kept constraint).  Phase 1 runs
/// once; every subsequent maximize re-enters phase 2 from the previous
/// optimal basis (objective changes never disturb primal feasibility), so
/// the N-objective loop pays N phase-2 re-optimizations instead of N full
/// two-phase solves.  Results are identical to cai::maximize on the same
/// system -- the poly fuzzer's warm-start oracle asserts this.
class SimplexSolver {
public:
  SimplexSolver(std::vector<LinearConstraint> Constraints, size_t NumVars);
  ~SimplexSolver();
  SimplexSolver(SimplexSolver &&) noexcept;
  SimplexSolver &operator=(SimplexSolver &&) noexcept;

  /// Maximizes \p Objective over the pinned system, warm-starting from the
  /// previous solve's basis.  Consults the installed SimplexCache first.
  LPResult maximize(const CoeffVec &Objective);

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace cai

#endif // CAI_DOMAINS_POLY_SIMPLEX_H
