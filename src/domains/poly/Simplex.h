//===- domains/poly/Simplex.h - Exact rational LP ----------------*- C++ -*-===//
///
/// \file
/// A two-phase primal simplex over exact rationals with Bland's rule
/// (guaranteed termination), for free variables and <= constraints.  This
/// is the decision procedure behind the polyhedra domain: satisfiability,
/// entailment of inequalities, and implicit-equality detection all reduce
/// to optimization calls.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_DOMAINS_POLY_SIMPLEX_H
#define CAI_DOMAINS_POLY_SIMPLEX_H

#include "support/Rational.h"

#include <vector>

namespace cai {

/// Outcome of an LP solve.
enum class LPStatus : uint8_t {
  Optimal,    ///< Bounded optimum found.
  Unbounded,  ///< Feasible but the objective is unbounded above.
  Infeasible, ///< No point satisfies the constraints.
};

/// Result of maximizing an objective over a polyhedron.
struct LPResult {
  LPStatus Status;
  Rational Value;              ///< Optimal objective value (when Optimal).
  std::vector<Rational> Point; ///< A maximizing point (when Optimal).
};

/// One linear constraint: Coeffs . x <= Rhs over free rational variables.
struct LinearConstraint {
  std::vector<Rational> Coeffs;
  Rational Rhs;
};

/// Maximizes Objective . x subject to the constraints (all variables free).
/// \p NumVars fixes the dimension; every constraint and the objective must
/// have exactly that many coefficients.
LPResult maximize(const std::vector<LinearConstraint> &Constraints,
                  const std::vector<Rational> &Objective, size_t NumVars);

/// Convenience: is the constraint system satisfiable?
bool isFeasible(const std::vector<LinearConstraint> &Constraints,
                size_t NumVars);

} // namespace cai

#endif // CAI_DOMAINS_POLY_SIMPLEX_H
