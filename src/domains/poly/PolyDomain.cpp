//===- domains/poly/PolyDomain.cpp - Linear-inequality domain --------------===//

#include "domains/poly/PolyDomain.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include "linalg/AffineSystem.h"

using namespace cai;

void PolyDomain::Env::add(Term T) {
  if (Index.emplace(T, Columns.size()).second)
    Columns.push_back(T);
}

void PolyDomain::Env::addIndeterminates(const TermContext &Ctx,
                                        const Atom &A) {
  if (A.predicate() != Ctx.eqSymbol() && A.predicate() != Ctx.leSymbol())
    return;
  for (Term Side : A.args()) {
    std::optional<LinearExpr> L = LinearExpr::fromTerm(Ctx, Side);
    if (!L)
      return;
    for (const auto &[T, C] : L->terms())
      add(T);
  }
}

void PolyDomain::Env::addIndeterminates(const TermContext &Ctx,
                                        const Conjunction &E) {
  if (E.isBottom())
    return;
  for (const Atom &A : E.atoms())
    addIndeterminates(Ctx, A);
}

std::optional<std::tuple<std::vector<Rational>, Rational, bool>>
PolyDomain::rowOf(const Atom &A, const Env &Env) const {
  const TermContext &Ctx = context();
  bool IsEq = A.predicate() == Ctx.eqSymbol();
  bool IsLe = A.predicate() == Ctx.leSymbol();
  if (!IsEq && !IsLe)
    return std::nullopt;
  std::optional<LinearExpr> Lhs = LinearExpr::fromTerm(Ctx, A.lhs());
  std::optional<LinearExpr> Rhs = LinearExpr::fromTerm(Ctx, A.rhs());
  if (!Lhs || !Rhs)
    return std::nullopt;
  LinearExpr Diff = *Lhs - *Rhs; // Diff <= 0 or Diff = 0.
  std::vector<Rational> Coeffs(Env.Columns.size());
  for (const auto &[T, C] : Diff.terms()) {
    auto It = Env.Index.find(T);
    if (It == Env.Index.end())
      return std::nullopt;
    Coeffs[It->second] = C;
  }
  return std::make_tuple(std::move(Coeffs), -Diff.constant(), IsEq);
}

Polyhedron PolyDomain::toPoly(const Conjunction &E, const Env &Env) const {
  Polyhedron P(Env.Columns.size());
  if (E.isBottom()) {
    // 0 <= -1: canonical empty.
    P.addLe(std::vector<Rational>(Env.Columns.size()), Rational(-1));
    return P;
  }
  for (const Atom &A : E.atoms()) {
    if (auto Row = rowOf(A, Env)) {
      auto &[Coeffs, Rhs, IsEq] = *Row;
      if (IsEq)
        P.addEq(Coeffs, Rhs);
      else
        P.addLe(std::move(Coeffs), std::move(Rhs));
    }
  }
  return P;
}

Conjunction PolyDomain::fromPoly(const Polyhedron &P, const Env &Env) const {
  if (P.isEmpty())
    return Conjunction::bottom();
  TermContext &Ctx = context();
  Conjunction Out;
  // Emit the affine hull as equalities, then the irredundant inequalities
  // that are not already implied equalities.  Both halves of an equality
  // pair are tight, so the hull lists each equality twice with opposite
  // signs; keep one representative per direction.
  std::vector<LinearConstraint> Eqs;
  for (LinearConstraint &C : P.affineHull()) {
    bool Mirrored = false;
    for (const LinearConstraint &E : Eqs) {
      bool Neg = E.Rhs == -C.Rhs;
      for (size_t I = 0; I < C.Coeffs.size() && Neg; ++I)
        Neg = E.Coeffs[I] == -C.Coeffs[I];
      if (Neg) {
        Mirrored = true;
        break;
      }
    }
    if (!Mirrored)
      Eqs.push_back(std::move(C));
  }
  auto IsEqRow = [&](const LinearConstraint &C) {
    for (const LinearConstraint &E : Eqs)
      if (E.Coeffs == C.Coeffs && E.Rhs == C.Rhs)
        return true;
    return false;
  };
  auto BuildExpr = [&](const LinearConstraint &C) {
    LinearExpr L;
    for (size_t I = 0; I < Env.Columns.size(); ++I)
      if (!C.Coeffs[I].isZero())
        L.addTerm(Env.Columns[I], C.Coeffs[I]);
    return L;
  };
  for (const LinearConstraint &C : Eqs) {
    // Sign-normalize so both tight directions render as the same atom.
    LinearExpr Lhs = BuildExpr(C);
    LinearExpr Rhs(C.Rhs);
    LinearExpr Diff = Lhs - Rhs;
    Rational Scale = Diff.normalizeIntegral(/*NormalizeSign=*/true);
    Lhs = Lhs.scaled(Scale);
    Rhs = Rhs.scaled(Scale);
    Out.add(Atom::mkEq(Ctx, Lhs.toTerm(Ctx), Rhs.toTerm(Ctx)));
  }
  Polyhedron Min = P.minimized();
  for (const LinearConstraint &C : Min.constraints()) {
    if (IsEqRow(C))
      continue;
    // Skip the mirror half of an equality pair.
    bool Mirror = false;
    for (const LinearConstraint &E : Eqs) {
      bool Neg = true;
      for (size_t I = 0; I < C.Coeffs.size() && Neg; ++I)
        Neg = C.Coeffs[I] == -E.Coeffs[I];
      if (Neg && C.Rhs == -E.Rhs) {
        Mirror = true;
        break;
      }
    }
    if (Mirror)
      continue;
    LinearExpr L = BuildExpr(C);
    Out.add(Atom::mkLe(Ctx, L.toTerm(Ctx), Ctx.mkNum(C.Rhs)));
  }
  return Out;
}

Conjunction PolyDomain::fromRowsVerbatim(const Polyhedron &P,
                                         const Env &Env) const {
  if (P.isEmpty())
    return Conjunction::bottom();
  TermContext &Ctx = context();
  const std::vector<LinearConstraint> &Rows = P.constraints();
  auto BuildExpr = [&](const LinearConstraint &C) {
    LinearExpr L;
    for (size_t I = 0; I < Env.Columns.size(); ++I)
      if (!C.Coeffs[I].isZero())
        L.addTerm(Env.Columns[I], C.Coeffs[I]);
    return L;
  };
  auto IsNegation = [](const LinearConstraint &A, const LinearConstraint &B) {
    if (A.Rhs != -B.Rhs)
      return false;
    for (size_t I = 0; I < A.Coeffs.size(); ++I)
      if (A.Coeffs[I] != -B.Coeffs[I])
        return false;
    return true;
  };
  Conjunction Out;
  std::vector<bool> Consumed(Rows.size(), false);
  for (size_t I = 0; I < Rows.size(); ++I) {
    if (Consumed[I])
      continue;
    size_t Mirror = Rows.size();
    for (size_t J = I + 1; J < Rows.size() && Mirror == Rows.size(); ++J)
      if (!Consumed[J] && IsNegation(Rows[I], Rows[J]))
        Mirror = J;
    if (Mirror != Rows.size()) {
      Consumed[Mirror] = true;
      // Sign-normalize like fromPoly so both directions render identically.
      LinearExpr Lhs = BuildExpr(Rows[I]);
      LinearExpr Rhs(Rows[I].Rhs);
      LinearExpr Diff = Lhs - Rhs;
      Rational Scale = Diff.normalizeIntegral(/*NormalizeSign=*/true);
      Lhs = Lhs.scaled(Scale);
      Rhs = Rhs.scaled(Scale);
      Out.add(Atom::mkEq(Ctx, Lhs.toTerm(Ctx), Rhs.toTerm(Ctx)));
      continue;
    }
    LinearExpr L = BuildExpr(Rows[I]);
    Out.add(Atom::mkLe(Ctx, L.toTerm(Ctx), Ctx.mkNum(Rows[I].Rhs)));
  }
  return Out;
}

Conjunction PolyDomain::join(const Conjunction &A, const Conjunction &B) const {
  CAI_TRACE_SPAN("poly.join", "domain");
  CAI_METRIC_INC("domain.poly.joins");
  SimplexCache::Scope LPScope = lpScope();
  if (A.isBottom() || isUnsat(A))
    return B;
  if (B.isBottom() || isUnsat(B))
    return A;
  Env Env;
  Env.addIndeterminates(context(), A);
  Env.addIndeterminates(context(), B);
  return fromPoly(Polyhedron::hull(toPoly(A, Env), toPoly(B, Env)), Env);
}

Conjunction PolyDomain::existQuant(const Conjunction &E,
                                   const std::vector<Term> &Vars) const {
  if (E.isBottom())
    return E;
  SimplexCache::Scope LPScope = lpScope();
  Env Env;
  Env.addIndeterminates(context(), E);
  std::vector<bool> Mask(Env.Columns.size(), false);
  for (size_t C = 0; C < Env.Columns.size(); ++C)
    for (Term V : Vars)
      if (occursIn(V, Env.Columns[C])) {
        Mask[C] = true;
        break;
      }
  return fromPoly(toPoly(E, Env).project(Mask), Env);
}

bool PolyDomain::entails(const Conjunction &E, const Atom &A) const {
  if (E.isBottom())
    return true;
  if (A.isTrivial(context()))
    return true;
  SimplexCache::Scope LPScope = lpScope();
  Env Env;
  Env.addIndeterminates(context(), E);
  Env.addIndeterminates(context(), A);
  auto Row = rowOf(A, Env);
  if (!Row)
    return false;
  Polyhedron P = toPoly(E, Env);
  auto &[Coeffs, Rhs, IsEq] = *Row;
  return IsEq ? P.entailsEq(Coeffs, Rhs) : P.entailsLe(Coeffs, Rhs);
}

bool PolyDomain::isUnsat(const Conjunction &E) const {
  if (E.isBottom())
    return true;
  SimplexCache::Scope LPScope = lpScope();
  Env Env;
  Env.addIndeterminates(context(), E);
  return toPoly(E, Env).isEmpty();
}

std::vector<std::pair<Term, Term>>
PolyDomain::impliedVarEqualities(const Conjunction &E) const {
  std::vector<std::pair<Term, Term>> Out;
  if (E.isBottom())
    return Out;
  SimplexCache::Scope LPScope = lpScope();
  Env Env;
  Env.addIndeterminates(context(), E);
  Polyhedron P = toPoly(E, Env);
  if (P.isEmpty())
    return Out;
  // Route the affine hull through the shared AffineSystem machinery to get
  // canonical variable representatives.
  AffineSystem<Rational> S(Env.Columns.size());
  for (const LinearConstraint &C : P.affineHull()) {
    LinRow<Rational> Row(C.Coeffs.begin(), C.Coeffs.end());
    Row.push_back(C.Rhs);
    S.addRow(std::move(Row));
  }
  std::vector<LinRow<Rational>> Reps = S.varRepresentatives();
  std::map<LinRow<Rational>, Term> Leader;
  for (size_t C = 0; C < Env.Columns.size(); ++C) {
    if (!Env.Columns[C]->isVariable())
      continue;
    auto [It, Inserted] = Leader.emplace(Reps[C], Env.Columns[C]);
    if (!Inserted)
      Out.emplace_back(It->second, Env.Columns[C]);
  }
  return Out;
}

std::optional<Term>
PolyDomain::alternate(const Conjunction &E, Term Var,
                      const std::vector<Term> &Avoid) const {
  if (E.isBottom())
    return std::nullopt;
  SimplexCache::Scope LPScope = lpScope();
  Env Env;
  Env.addIndeterminates(context(), E);
  auto VarIt = Env.Index.find(Var);
  if (VarIt == Env.Index.end())
    return std::nullopt;
  Polyhedron P = toPoly(E, Env);
  if (P.isEmpty())
    return std::nullopt;
  AffineSystem<Rational> S(Env.Columns.size());
  for (const LinearConstraint &C : P.affineHull()) {
    LinRow<Rational> Row(C.Coeffs.begin(), C.Coeffs.end());
    Row.push_back(C.Rhs);
    S.addRow(std::move(Row));
  }
  std::vector<bool> Mask(Env.Columns.size(), false);
  for (size_t C = 0; C < Env.Columns.size(); ++C) {
    if (C == VarIt->second)
      continue;
    if (occursIn(Var, Env.Columns[C])) {
      Mask[C] = true;
      continue;
    }
    for (Term V : Avoid)
      if (occursIn(V, Env.Columns[C])) {
        Mask[C] = true;
        break;
      }
  }
  std::optional<LinRow<Rational>> Row = S.solveFor(VarIt->second, Mask);
  if (!Row)
    return std::nullopt;
  LinearExpr Expr((*Row)[Env.Columns.size()]);
  for (size_t C = 0; C < Env.Columns.size(); ++C)
    if (!(*Row)[C].isZero())
      Expr.addTerm(Env.Columns[C], (*Row)[C]);
  return Expr.toTerm(context());
}

std::vector<std::pair<Term, Term>>
PolyDomain::alternateBatch(const Conjunction &E,
                           const std::vector<Term> &Targets) const {
  std::vector<std::pair<Term, Term>> Out;
  if (E.isBottom())
    return Out;
  SimplexCache::Scope LPScope = lpScope();
  Env Env;
  Env.addIndeterminates(context(), E);
  std::vector<bool> Mask(Env.Columns.size(), false);
  bool AnyTarget = false;
  for (size_t C = 0; C < Env.Columns.size(); ++C)
    for (Term V : Targets)
      if (occursIn(V, Env.Columns[C])) {
        Mask[C] = true;
        AnyTarget |= Env.Columns[C]->isVariable();
        break;
      }
  if (!AnyTarget)
    return Out;
  Polyhedron P = toPoly(E, Env);
  if (P.isEmpty())
    return Out;
  AffineSystem<Rational> S(Env.Columns.size());
  for (const LinearConstraint &C : P.affineHull()) {
    LinRow<Rational> Row(C.Coeffs.begin(), C.Coeffs.end());
    Row.push_back(C.Rhs);
    S.addRow(std::move(Row));
  }
  for (auto &[Col, Row] : S.solveForMany(Mask)) {
    if (!Env.Columns[Col]->isVariable())
      continue;
    LinearExpr Expr(Row[Env.Columns.size()]);
    for (size_t C = 0; C < Env.Columns.size(); ++C)
      if (!Row[C].isZero())
        Expr.addTerm(Env.Columns[C], Row[C]);
    Out.emplace_back(Env.Columns[Col], Expr.toTerm(context()));
  }
  return Out;
}

Conjunction PolyDomain::widen(const Conjunction &Old,
                              const Conjunction &New) const {
  CAI_TRACE_SPAN("poly.widen", "domain");
  CAI_METRIC_INC("domain.poly.widenings");
  SimplexCache::Scope LPScope = lpScope();
  if (Old.isBottom())
    return New;
  if (New.isBottom())
    return Old;
  Env Env;
  Env.addIndeterminates(context(), Old);
  Env.addIndeterminates(context(), New);
  return fromRowsVerbatim(toPoly(Old, Env).widen(toPoly(New, Env)), Env);
}

void PolyDomain::collectStats(LatticeStats &S) const {
  LogicalLattice::collectStats(S);
  S.CacheHits += LPCache.counters().Hits;
  S.CacheMisses += LPCache.counters().Misses;
}
