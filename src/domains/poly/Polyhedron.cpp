//===- domains/poly/Polyhedron.cpp - Constraint-form polyhedra -------------===//

#include "domains/poly/Polyhedron.h"

#include "domains/poly/LPCache.h"
#include "linalg/AffineSystem.h"
#include "obs/Metrics.h"
#include "support/Hash.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <set>
#include <unordered_map>

using namespace cai;

/// Process-wide row cap (one analysis per process; cai-analyze sets it from
/// --poly-max-rows before running).
static thread_local size_t RowCap = DefaultPolyRowCap;

size_t cai::polyRowCap() { return RowCap; }
void cai::setPolyRowCap(size_t Cap) { RowCap = Cap; }

bool Polyhedron::normalizeRow(LinearConstraint &C) const {
  // Scale so coefficients are integral with gcd 1 (positive scale only,
  // preserving the inequality's direction).
  BigInt Lcm(1);
  for (const Rational &Coef : C.Coeffs)
    Lcm = BigInt::lcm(Lcm, Coef.denominator());
  Lcm = BigInt::lcm(Lcm, C.Rhs.denominator());
  BigInt Gcd;
  for (const Rational &Coef : C.Coeffs)
    Gcd = BigInt::gcd(Gcd, (Coef * Rational(Lcm)).numerator());
  if (Gcd.isZero()) {
    // 0 . x <= Rhs: trivially true or trivially false.
    return C.Rhs.sign() >= 0;
  }
  Rational Scale = Rational(Lcm) / Rational(Gcd);
  for (Rational &Coef : C.Coeffs)
    Coef *= Scale;
  C.Rhs *= Scale;
  return true;
}

void Polyhedron::addLe(CoeffVec Coeffs, Rational Rhs) {
  assert(Coeffs.size() == NumVars && "constraint dimension mismatch");
  LinearConstraint C{std::move(Coeffs), std::move(Rhs)};
  if (!normalizeRow(C)) {
    Rows.push_back(std::move(C)); // Trivially false row: keeps emptiness.
    return;
  }
  bool Zero = true;
  for (const Rational &Coef : C.Coeffs)
    Zero &= Coef.isZero();
  if (Zero)
    return; // Trivially true.
  if (std::find_if(Rows.begin(), Rows.end(), [&](const LinearConstraint &R) {
        return R.Coeffs == C.Coeffs && R.Rhs <= C.Rhs;
      }) != Rows.end())
    return; // A tighter or equal parallel row already exists.
  Rows.push_back(std::move(C));
}

void Polyhedron::addEq(const CoeffVec &Coeffs, const Rational &Rhs) {
  addLe(Coeffs, Rhs);
  CoeffVec Neg(Coeffs.size());
  for (size_t I = 0; I < Coeffs.size(); ++I)
    Neg[I] = -Coeffs[I];
  addLe(std::move(Neg), -Rhs);
}

bool Polyhedron::isEmpty() const { return !isFeasible(Rows, NumVars); }

bool Polyhedron::entailsLe(const CoeffVec &Coeffs,
                           const Rational &Rhs) const {
  LPResult R = maximize(Rows, Coeffs, NumVars);
  if (R.Status == LPStatus::Infeasible)
    return true;
  return R.Status == LPStatus::Optimal && R.Value <= Rhs;
}

bool Polyhedron::entailsEq(const CoeffVec &Coeffs,
                           const Rational &Rhs) const {
  if (!entailsLe(Coeffs, Rhs))
    return false;
  CoeffVec Neg(Coeffs.size());
  for (size_t I = 0; I < Coeffs.size(); ++I)
    Neg[I] = -Coeffs[I];
  return entailsLe(Neg, -Rhs);
}

bool Polyhedron::eliminateByEquality(std::vector<TrackedRow> &Work,
                                     size_t Col) const {
  // An equality shows up as a row plus its exact negation (addEq produces
  // that shape, and normalizeRow keeps both sides in the same scale).  Find
  // one with a nonzero coefficient at Col; hash rows so the negation lookup
  // is not a quadratic scan.
  auto RowHash = [](const LinearConstraint &C) {
    return hashCombine(hashRange(C.Coeffs.begin(), C.Coeffs.end()),
                       C.Rhs.hash());
  };
  std::unordered_map<uint64_t, std::vector<size_t>> ByHash;
  ByHash.reserve(Work.size());
  for (size_t I = 0; I < Work.size(); ++I)
    ByHash[RowHash(Work[I].C)].push_back(I);

  size_t EqI = Work.size(), EqJ = Work.size();
  LinearConstraint Negated;
  for (size_t I = 0; I < Work.size() && EqI == Work.size(); ++I) {
    if (Work[I].C.Coeffs[Col].isZero())
      continue;
    Negated.Coeffs.resize(NumVars);
    for (size_t K = 0; K < NumVars; ++K)
      Negated.Coeffs[K] = -Work[I].C.Coeffs[K];
    Negated.Rhs = -Work[I].C.Rhs;
    auto It = ByHash.find(RowHash(Negated));
    if (It == ByHash.end())
      continue;
    for (size_t J : It->second)
      if (J != I && Work[J].C == Negated) {
        EqI = I;
        EqJ = J;
        break;
      }
  }
  if (EqI == Work.size())
    return false;

  // E . x = E.Rhs holds on the whole polyhedron: substitute it into every
  // other row to zero out Col, then drop the pair.  Exact Gaussian step --
  // the row count only shrinks.
  const LinearConstraint E = Work[EqI].C; // Copy: Work is edited below.
  const Rational &Pivot = E.Coeffs[Col];
  std::vector<TrackedRow> Next;
  Next.reserve(Work.size() - 2);
  for (size_t I = 0; I < Work.size(); ++I) {
    if (I == EqI || I == EqJ)
      continue;
    TrackedRow R = std::move(Work[I]);
    LinearConstraint &C = R.C;
    if (!C.Coeffs[Col].isZero()) {
      Rational F = C.Coeffs[Col] / Pivot;
      for (size_t K = 0; K < NumVars; ++K)
        C.Coeffs[K] -= F * E.Coeffs[K];
      C.Rhs -= F * E.Rhs;
      if (normalizeRow(C)) {
        bool AllZero = true;
        for (const Rational &Coef : C.Coeffs)
          AllZero &= Coef.isZero();
        if (AllZero)
          continue; // Trivially true after substitution.
      }
      // Rows failing normalizeRow are infeasibility witnesses: keep them.
    }
    Next.push_back(std::move(R));
  }
  Work = std::move(Next);
  return true;
}

Polyhedron Polyhedron::project(const std::vector<bool> &Eliminate) const {
  assert(Eliminate.size() == NumVars && "eliminate mask size mismatch");
  std::vector<TrackedRow> Work;
  Work.reserve(Rows.size());
  for (const LinearConstraint &C : Rows)
    Work.push_back({C, 0});

  // Kohler's acceleration: any FM-derived row whose derivation uses more
  // than k+1 rows of the system tracking started from (k = FM steps since
  // then) is redundant in the k-th projection, and the essential
  // inequality it subsumes is re-derived elsewhere with a smaller history
  // (FM enumerates every pairing), so skipping it is exact.  Equality
  // substitution materializes only one derivation per row, so tracking
  // restarts from the post-substitution system instead of threading
  // histories through it.
  bool TrackHist = false;
  size_t FMSteps = 0;
  auto ResetHist = [&](std::vector<TrackedRow> &Rs) {
    TrackHist = Rs.size() <= 64;
    FMSteps = 0;
    if (TrackHist)
      for (size_t I = 0; I < Rs.size(); ++I)
        Rs[I].Hist = uint64_t(1) << I;
  };
  ResetHist(Work);

  auto Dedupe = [](std::vector<TrackedRow> &Rs) {
    std::sort(Rs.begin(), Rs.end(),
              [](const TrackedRow &A, const TrackedRow &B) {
                if (rowLexLess(A.C, B.C))
                  return true;
                if (rowLexLess(B.C, A.C))
                  return false;
                // Exact duplicates: surface the cheapest derivation, the
                // copy Kohler's criterion is entitled to keep.
                return std::popcount(A.Hist) < std::popcount(B.Hist);
              });
    // Among parallel rows keep only the tightest.
    std::vector<TrackedRow> Out;
    for (TrackedRow &R : Rs)
      if (Out.empty() || Out.back().C.Coeffs != R.C.Coeffs)
        Out.push_back(std::move(R));
    Rs = std::move(Out);
  };

  // Termination backstop: when FM growth blows an intermediate system past
  // the cap, drop the densest rows (a sound over-approximation -- fewer
  // constraints is a larger polyhedron).  Bounds-like sparse rows survive.
  auto Havoc = [](std::vector<TrackedRow> &Rs) {
    size_t Cap = polyRowCap();
    if (Cap == 0 || Rs.size() <= Cap)
      return;
    std::vector<size_t> NonZeros(Rs.size());
    for (size_t I = 0; I < Rs.size(); ++I)
      for (const Rational &Coef : Rs[I].C.Coeffs)
        NonZeros[I] += !Coef.isZero();
    std::vector<size_t> Order(Rs.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      return NonZeros[A] < NonZeros[B];
    });
    std::vector<TrackedRow> Kept;
    Kept.reserve(Cap);
    for (size_t I = 0; I < Cap; ++I)
      Kept.push_back(std::move(Rs[Order[I]]));
    CAI_METRIC_INC("poly.havoc.events");
    CAI_METRIC_ADD("poly.havoc.rows_dropped", Rs.size() - Cap);
    Rs = std::move(Kept);
  };

  for (size_t Col = 0; Col < NumVars; ++Col) {
    if (!Eliminate[Col])
      continue;
    // Exact, growth-free elimination first: the lifted hull systems are
    // mostly equality pairs, and substituting them out is what keeps the
    // quadratic FM cascade from ever starting.  One successful substitution
    // zeroes the column in every remaining row.
    if (eliminateByEquality(Work, Col)) {
      Dedupe(Work);
      ResetHist(Work);
      continue;
    }
    std::vector<TrackedRow> Zero, Pos, Neg;
    for (TrackedRow &R : Work) {
      int S = R.C.Coeffs[Col].sign();
      (S == 0 ? Zero : S > 0 ? Pos : Neg).push_back(std::move(R));
    }
    std::vector<TrackedRow> Next = std::move(Zero);
    for (const TrackedRow &P : Pos) {
      for (const TrackedRow &N : Neg) {
        uint64_t Hist = P.Hist | N.Hist;
        if (TrackHist &&
            static_cast<size_t>(std::popcount(Hist)) > FMSteps + 2)
          continue; // Kohler: redundant in the post-step projection.
        // Combine so the column cancels: P/p + N/(-n).
        Rational Pc = P.C.Coeffs[Col];
        Rational Nc = -N.C.Coeffs[Col];
        LinearConstraint C;
        C.Coeffs.resize(NumVars);
        for (size_t I = 0; I < NumVars; ++I)
          C.Coeffs[I] = P.C.Coeffs[I] / Pc + N.C.Coeffs[I] / Nc;
        C.Rhs = P.C.Rhs / Pc + N.C.Rhs / Nc;
        if (normalizeRow(C)) {
          bool AllZero = true;
          for (const Rational &Coef : C.Coeffs)
            AllZero &= Coef.isZero();
          if (!AllZero)
            Next.push_back({std::move(C), Hist});
        } else {
          Next.push_back({std::move(C), Hist}); // Infeasibility witness.
        }
      }
    }
    Dedupe(Next);
    Havoc(Next);
    Work = std::move(Next);
    ++FMSteps;
  }

  Polyhedron Out(NumVars);
  Out.Rows.reserve(Work.size());
  for (TrackedRow &R : Work)
    Out.Rows.push_back(std::move(R.C));
  return Out.minimized();
}

Polyhedron Polyhedron::hull(const Polyhedron &A, const Polyhedron &B) {
  assert(A.NumVars == B.NumVars && "hull of different spaces");
  if (A.isEmpty())
    return B;
  if (B.isEmpty())
    return A;
  size_t N = A.NumVars;
  // Lifted space: x (result), y (the A-scaled point), lambda.
  size_t Lifted = 2 * N + 1;
  size_t LambdaCol = 2 * N;
  Polyhedron L(Lifted);
  for (const LinearConstraint &C : A.Rows) {
    // a . y <= lambda * c.
    CoeffVec Row(Lifted);
    for (size_t I = 0; I < N; ++I)
      Row[N + I] = C.Coeffs[I];
    Row[LambdaCol] = -C.Rhs;
    L.addLe(std::move(Row), Rational());
  }
  for (const LinearConstraint &C : B.Rows) {
    // g . (x - y) <= (1 - lambda) * d.
    CoeffVec Row(Lifted);
    for (size_t I = 0; I < N; ++I) {
      Row[I] = C.Coeffs[I];
      Row[N + I] = -C.Coeffs[I];
    }
    Row[LambdaCol] = C.Rhs;
    L.addLe(std::move(Row), C.Rhs);
  }
  {
    CoeffVec Row(Lifted);
    Row[LambdaCol] = Rational(-1);
    L.addLe(Row, Rational()); // lambda >= 0.
    Row[LambdaCol] = Rational(1);
    L.addLe(std::move(Row), Rational(1)); // lambda <= 1.
  }
  std::vector<bool> Mask(Lifted, false);
  for (size_t I = N; I < Lifted; ++I)
    Mask[I] = true;
  Polyhedron Projected = L.project(Mask);
  // Re-home into the N-column space.
  Polyhedron Out(N);
  for (const LinearConstraint &C : Projected.Rows) {
    CoeffVec Coeffs(C.Coeffs.begin(), C.Coeffs.begin() + N);
    Out.addLe(std::move(Coeffs), C.Rhs);
  }
  return Out;
}

std::vector<LinearConstraint> Polyhedron::affineHull() const {
  // One LP per row against the same system: the pinned solver pays phase 1
  // once and warm-starts every objective after the first.
  std::vector<LinearConstraint> Eqs;
  SimplexSolver Solver(Rows, NumVars);
  for (const LinearConstraint &C : Rows) {
    CoeffVec Neg(C.Coeffs.size());
    for (size_t I = 0; I < C.Coeffs.size(); ++I)
      Neg[I] = -C.Coeffs[I];
    LPResult R = Solver.maximize(Neg);
    if (R.Status == LPStatus::Optimal && R.Value == -C.Rhs)
      Eqs.push_back(C);
  }
  return Eqs;
}

Polyhedron Polyhedron::minimized() const {
  Polyhedron Out(NumVars);
  std::vector<LinearConstraint> Kept = Rows;
  for (size_t I = 0; I < Kept.size();) {
    std::vector<LinearConstraint> Others;
    Others.reserve(Kept.size() - 1);
    for (size_t J = 0; J < Kept.size(); ++J)
      if (J != I)
        Others.push_back(Kept[J]);
    LPResult R = maximize(Others, Kept[I].Coeffs, NumVars);
    bool Redundant = R.Status == LPStatus::Infeasible ||
                     (R.Status == LPStatus::Optimal && R.Value <= Kept[I].Rhs);
    if (Redundant)
      Kept.erase(Kept.begin() + I);
    else
      ++I;
  }
  Out.Rows = std::move(Kept);
  return Out;
}

Polyhedron Polyhedron::widen(const Polyhedron &Newer) const {
  if (isEmpty())
    return Newer;
  if (Newer.isEmpty())
    return *this;
  Polyhedron Out(NumVars);
  // Every kept row is one entailment LP over the same Newer system:
  // warm-start them all off a single phase 1.
  SimplexSolver Entails(Newer.Rows, NumVars);
  for (const LinearConstraint &C : Rows) {
    LPResult R = Entails.maximize(C.Coeffs);
    if (R.Status == LPStatus::Infeasible ||
        (R.Status == LPStatus::Optimal && R.Value <= C.Rhs))
      Out.Rows.push_back(C);
  }
  // Equality-aware refinement.  CH78 keeps only syntactic rows of the old
  // polyhedron, so an equality implied by its rows without being written
  // as one -- p = x + 1 from {u = p, u = x + 1} -- is lost even when the
  // newer operand satisfies it too.  The equalities valid on an operand
  // span exactly its affine hull, so the equalities valid on both are the
  // affine join; keep them all.  Termination is preserved: the common
  // equality rank can only decrease along a widening sequence (at most
  // NumVars + 1 times), and once it is stable these canonical rows are
  // already rows of the old operand that CH78 itself keeps.
  AffineSystem<Rational> EqOld(NumVars), EqNew(NumVars);
  for (const LinearConstraint &C : affineHull()) {
    LinRow<Rational> Row(C.Coeffs.begin(), C.Coeffs.end());
    Row.push_back(C.Rhs);
    EqOld.addRow(std::move(Row));
  }
  for (const LinearConstraint &C : Newer.affineHull()) {
    LinRow<Rational> Row(C.Coeffs.begin(), C.Coeffs.end());
    Row.push_back(C.Rhs);
    EqNew.addRow(std::move(Row));
  }
  AffineSystem<Rational> Common = AffineSystem<Rational>::join(EqOld, EqNew);
  for (const LinRow<Rational> &Row : Common.rows()) {
    CoeffVec Coeffs(Row.begin(), Row.begin() + NumVars);
    Out.addEq(Coeffs, Row[NumVars]);
  }
  return Out;
}
