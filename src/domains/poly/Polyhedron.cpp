//===- domains/poly/Polyhedron.cpp - Constraint-form polyhedra -------------===//

#include "domains/poly/Polyhedron.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace cai;

bool Polyhedron::normalizeRow(LinearConstraint &C) const {
  // Scale so coefficients are integral with gcd 1 (positive scale only,
  // preserving the inequality's direction).
  BigInt Lcm(1);
  for (const Rational &Coef : C.Coeffs)
    Lcm = BigInt::lcm(Lcm, Coef.denominator());
  Lcm = BigInt::lcm(Lcm, C.Rhs.denominator());
  BigInt Gcd;
  for (const Rational &Coef : C.Coeffs)
    Gcd = BigInt::gcd(Gcd, (Coef * Rational(Lcm)).numerator());
  if (Gcd.isZero()) {
    // 0 . x <= Rhs: trivially true or trivially false.
    return C.Rhs.sign() >= 0;
  }
  Rational Scale = Rational(Lcm) / Rational(Gcd);
  for (Rational &Coef : C.Coeffs)
    Coef *= Scale;
  C.Rhs *= Scale;
  return true;
}

void Polyhedron::addLe(std::vector<Rational> Coeffs, Rational Rhs) {
  assert(Coeffs.size() == NumVars && "constraint dimension mismatch");
  LinearConstraint C{std::move(Coeffs), std::move(Rhs)};
  if (!normalizeRow(C)) {
    Rows.push_back(std::move(C)); // Trivially false row: keeps emptiness.
    return;
  }
  bool Zero = true;
  for (const Rational &Coef : C.Coeffs)
    Zero &= Coef.isZero();
  if (Zero)
    return; // Trivially true.
  if (std::find_if(Rows.begin(), Rows.end(), [&](const LinearConstraint &R) {
        return R.Coeffs == C.Coeffs && R.Rhs <= C.Rhs;
      }) != Rows.end())
    return; // A tighter or equal parallel row already exists.
  Rows.push_back(std::move(C));
}

void Polyhedron::addEq(const std::vector<Rational> &Coeffs,
                       const Rational &Rhs) {
  addLe(Coeffs, Rhs);
  std::vector<Rational> Neg(Coeffs.size());
  for (size_t I = 0; I < Coeffs.size(); ++I)
    Neg[I] = -Coeffs[I];
  addLe(std::move(Neg), -Rhs);
}

bool Polyhedron::isEmpty() const { return !isFeasible(Rows, NumVars); }

bool Polyhedron::entailsLe(const std::vector<Rational> &Coeffs,
                           const Rational &Rhs) const {
  LPResult R = maximize(Rows, Coeffs, NumVars);
  if (R.Status == LPStatus::Infeasible)
    return true;
  return R.Status == LPStatus::Optimal && R.Value <= Rhs;
}

bool Polyhedron::entailsEq(const std::vector<Rational> &Coeffs,
                           const Rational &Rhs) const {
  if (!entailsLe(Coeffs, Rhs))
    return false;
  std::vector<Rational> Neg(Coeffs.size());
  for (size_t I = 0; I < Coeffs.size(); ++I)
    Neg[I] = -Coeffs[I];
  return entailsLe(Neg, -Rhs);
}

Polyhedron Polyhedron::project(const std::vector<bool> &Eliminate) const {
  assert(Eliminate.size() == NumVars && "eliminate mask size mismatch");
  std::vector<LinearConstraint> Work = Rows;

  auto Dedupe = [](std::vector<LinearConstraint> &Rs) {
    std::sort(Rs.begin(), Rs.end(),
              [](const LinearConstraint &A, const LinearConstraint &B) {
                if (A.Coeffs != B.Coeffs) {
                  // Lexicographic on coefficients.
                  for (size_t I = 0; I < A.Coeffs.size(); ++I)
                    if (A.Coeffs[I] != B.Coeffs[I])
                      return A.Coeffs[I] < B.Coeffs[I];
                }
                return A.Rhs < B.Rhs;
              });
    // Among parallel rows keep only the tightest.
    std::vector<LinearConstraint> Out;
    for (LinearConstraint &C : Rs)
      if (Out.empty() || Out.back().Coeffs != C.Coeffs)
        Out.push_back(std::move(C));
    Rs = std::move(Out);
  };

  for (size_t Col = 0; Col < NumVars; ++Col) {
    if (!Eliminate[Col])
      continue;
    std::vector<LinearConstraint> Zero, Pos, Neg;
    for (LinearConstraint &C : Work) {
      int S = C.Coeffs[Col].sign();
      (S == 0 ? Zero : S > 0 ? Pos : Neg).push_back(std::move(C));
    }
    std::vector<LinearConstraint> Next = std::move(Zero);
    for (const LinearConstraint &P : Pos) {
      for (const LinearConstraint &N : Neg) {
        // Combine so the column cancels: P/p + N/(-n).
        Rational Pc = P.Coeffs[Col];
        Rational Nc = -N.Coeffs[Col];
        LinearConstraint C;
        C.Coeffs.resize(NumVars);
        for (size_t I = 0; I < NumVars; ++I)
          C.Coeffs[I] = P.Coeffs[I] / Pc + N.Coeffs[I] / Nc;
        C.Rhs = P.Rhs / Pc + N.Rhs / Nc;
        if (normalizeRow(C)) {
          bool AllZero = true;
          for (const Rational &Coef : C.Coeffs)
            AllZero &= Coef.isZero();
          if (!AllZero)
            Next.push_back(std::move(C));
        } else {
          Next.push_back(std::move(C)); // Infeasibility witness.
        }
      }
    }
    Dedupe(Next);
    Work = std::move(Next);
  }

  Polyhedron Out(NumVars);
  Out.Rows = std::move(Work);
  return Out.minimized();
}

Polyhedron Polyhedron::hull(const Polyhedron &A, const Polyhedron &B) {
  assert(A.NumVars == B.NumVars && "hull of different spaces");
  if (A.isEmpty())
    return B;
  if (B.isEmpty())
    return A;
  size_t N = A.NumVars;
  // Lifted space: x (result), y (the A-scaled point), lambda.
  size_t Lifted = 2 * N + 1;
  size_t LambdaCol = 2 * N;
  Polyhedron L(Lifted);
  for (const LinearConstraint &C : A.Rows) {
    // a . y <= lambda * c.
    std::vector<Rational> Row(Lifted);
    for (size_t I = 0; I < N; ++I)
      Row[N + I] = C.Coeffs[I];
    Row[LambdaCol] = -C.Rhs;
    L.addLe(std::move(Row), Rational());
  }
  for (const LinearConstraint &C : B.Rows) {
    // g . (x - y) <= (1 - lambda) * d.
    std::vector<Rational> Row(Lifted);
    for (size_t I = 0; I < N; ++I) {
      Row[I] = C.Coeffs[I];
      Row[N + I] = -C.Coeffs[I];
    }
    Row[LambdaCol] = C.Rhs;
    L.addLe(std::move(Row), C.Rhs);
  }
  {
    std::vector<Rational> Row(Lifted);
    Row[LambdaCol] = Rational(-1);
    L.addLe(Row, Rational()); // lambda >= 0.
    Row[LambdaCol] = Rational(1);
    L.addLe(std::move(Row), Rational(1)); // lambda <= 1.
  }
  std::vector<bool> Mask(Lifted, false);
  for (size_t I = N; I < Lifted; ++I)
    Mask[I] = true;
  Polyhedron Projected = L.project(Mask);
  // Re-home into the N-column space.
  Polyhedron Out(N);
  for (const LinearConstraint &C : Projected.Rows) {
    std::vector<Rational> Coeffs(C.Coeffs.begin(), C.Coeffs.begin() + N);
    Out.addLe(std::move(Coeffs), C.Rhs);
  }
  return Out;
}

std::vector<LinearConstraint> Polyhedron::affineHull() const {
  std::vector<LinearConstraint> Eqs;
  for (const LinearConstraint &C : Rows) {
    std::vector<Rational> Neg(C.Coeffs.size());
    for (size_t I = 0; I < C.Coeffs.size(); ++I)
      Neg[I] = -C.Coeffs[I];
    LPResult R = maximize(Rows, Neg, NumVars);
    if (R.Status == LPStatus::Optimal && R.Value == -C.Rhs)
      Eqs.push_back(C);
  }
  return Eqs;
}

Polyhedron Polyhedron::minimized() const {
  Polyhedron Out(NumVars);
  std::vector<LinearConstraint> Kept = Rows;
  for (size_t I = 0; I < Kept.size();) {
    std::vector<LinearConstraint> Others;
    Others.reserve(Kept.size() - 1);
    for (size_t J = 0; J < Kept.size(); ++J)
      if (J != I)
        Others.push_back(Kept[J]);
    LPResult R = maximize(Others, Kept[I].Coeffs, NumVars);
    bool Redundant = R.Status == LPStatus::Infeasible ||
                     (R.Status == LPStatus::Optimal && R.Value <= Kept[I].Rhs);
    if (Redundant)
      Kept.erase(Kept.begin() + I);
    else
      ++I;
  }
  Out.Rows = std::move(Kept);
  return Out;
}

Polyhedron Polyhedron::widen(const Polyhedron &Newer) const {
  if (isEmpty())
    return Newer;
  if (Newer.isEmpty())
    return *this;
  Polyhedron Out(NumVars);
  for (const LinearConstraint &C : Rows)
    if (Newer.entailsLe(C.Coeffs, C.Rhs))
      Out.Rows.push_back(C);
  return Out;
}
