//===- domains/affine/AffineDomain.cpp - Karr's affine equalities ----------===//

#include "domains/affine/AffineDomain.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

using namespace cai;

void AffineDomain::Env::add(Term T) {
  if (Index.emplace(T, Columns.size()).second)
    Columns.push_back(T);
}

void AffineDomain::Env::addIndeterminates(const TermContext &Ctx,
                                          const Atom &A) {
  if (A.predicate() != Ctx.eqSymbol())
    return;
  std::optional<LinearExpr> Lhs = LinearExpr::fromTerm(Ctx, A.lhs());
  std::optional<LinearExpr> Rhs = LinearExpr::fromTerm(Ctx, A.rhs());
  if (!Lhs || !Rhs)
    return;
  for (const auto &[T, C] : Lhs->terms())
    add(T);
  for (const auto &[T, C] : Rhs->terms())
    add(T);
}

void AffineDomain::Env::addIndeterminates(const TermContext &Ctx,
                                          const Conjunction &E) {
  if (E.isBottom())
    return;
  for (const Atom &A : E.atoms())
    addIndeterminates(Ctx, A);
}

std::optional<LinRow<Rational>> AffineDomain::rowOf(const Atom &A,
                                                         const Env &Env) const {
  if (A.predicate() != context().eqSymbol())
    return std::nullopt;
  std::optional<LinearExpr> Lhs = LinearExpr::fromTerm(context(), A.lhs());
  std::optional<LinearExpr> Rhs = LinearExpr::fromTerm(context(), A.rhs());
  if (!Lhs || !Rhs)
    return std::nullopt;
  LinearExpr Diff = *Lhs - *Rhs;
  LinRow<Rational> Row(Env.Columns.size() + 1);
  for (const auto &[T, C] : Diff.terms()) {
    auto It = Env.Index.find(T);
    if (It == Env.Index.end())
      return std::nullopt; // Indeterminate unknown to this column space.
    Row[It->second] = C;
  }
  Row[Env.Columns.size()] = -Diff.constant();
  return Row;
}

AffineSystem<Rational> AffineDomain::toSystem(const Conjunction &E,
                                              const Env &Env) const {
  AffineSystem<Rational> S(Env.Columns.size());
  if (E.isBottom())
    return AffineSystem<Rational>::inconsistent(Env.Columns.size());
  for (const Atom &A : E.atoms())
    if (std::optional<LinRow<Rational>> Row = rowOf(A, Env))
      S.addRow(std::move(*Row));
  return S;
}

Conjunction AffineDomain::fromSystem(const AffineSystem<Rational> &S,
                                     const Env &Env) const {
  if (S.isInconsistent())
    return Conjunction::bottom();
  TermContext &Ctx = context();
  Conjunction Out;
  for (const LinRow<Rational> &Row : S.rows()) {
    LinearExpr Lhs;
    for (size_t C = 0; C < Env.Columns.size(); ++C)
      if (!Row[C].isZero())
        Lhs.addTerm(Env.Columns[C], Row[C]);
    LinearExpr Rhs(Row[Env.Columns.size()]);
    // Scale to integral coefficients for readable canonical output.
    LinearExpr Diff = Lhs - Rhs;
    Rational Scale = Diff.normalizeIntegral(/*NormalizeSign=*/true);
    Lhs = Lhs.scaled(Scale);
    Rhs = Rhs.scaled(Scale);
    Out.add(Atom::mkEq(Ctx, Lhs.toTerm(Ctx), Rhs.toTerm(Ctx)));
  }
  return Out;
}

Conjunction AffineDomain::join(const Conjunction &A,
                               const Conjunction &B) const {
  CAI_TRACE_SPAN("affine.join", "domain");
  CAI_METRIC_INC("domain.affine.joins");
  if (A.isBottom() || isUnsat(A))
    return B;
  if (B.isBottom() || isUnsat(B))
    return A;
  Env Env;
  Env.addIndeterminates(context(), A);
  Env.addIndeterminates(context(), B);
  AffineSystem<Rational> SA = toSystem(A, Env);
  AffineSystem<Rational> SB = toSystem(B, Env);
  return fromSystem(AffineSystem<Rational>::join(SA, SB), Env);
}

Conjunction AffineDomain::existQuant(const Conjunction &E,
                                     const std::vector<Term> &Vars) const {
  if (E.isBottom())
    return E;
  Env Env;
  Env.addIndeterminates(context(), E);
  AffineSystem<Rational> S = toSystem(E, Env);
  // Eliminate each variable column in Vars, and every opaque column whose
  // term mentions one of them.
  std::vector<bool> Mask(Env.Columns.size(), false);
  for (size_t C = 0; C < Env.Columns.size(); ++C)
    for (Term V : Vars)
      if (occursIn(V, Env.Columns[C])) {
        Mask[C] = true;
        break;
      }
  return fromSystem(S.project(Mask), Env);
}

bool AffineDomain::entails(const Conjunction &E, const Atom &A) const {
  if (E.isBottom())
    return true;
  if (A.isTrivial(context()))
    return true;
  Env Env;
  Env.addIndeterminates(context(), E);
  Env.addIndeterminates(context(), A);
  std::optional<LinRow<Rational>> Row = rowOf(A, Env);
  if (!Row)
    return false; // Not a linear equality: not expressible here.
  return toSystem(E, Env).entails(std::move(*Row));
}

bool AffineDomain::isUnsat(const Conjunction &E) const {
  if (E.isBottom())
    return true;
  Env Env;
  Env.addIndeterminates(context(), E);
  return toSystem(E, Env).isInconsistent();
}

std::vector<std::pair<Term, Term>>
AffineDomain::impliedVarEqualities(const Conjunction &E) const {
  std::vector<std::pair<Term, Term>> Out;
  if (E.isBottom())
    return Out;
  Env Env;
  Env.addIndeterminates(context(), E);
  AffineSystem<Rational> S = toSystem(E, Env);
  if (S.isInconsistent())
    return Out;
  std::vector<LinRow<Rational>> Reps = S.varRepresentatives();
  // Group variable columns with identical representatives.
  std::map<LinRow<Rational>, Term, std::less<LinRow<Rational>>>
      Leader;
  for (size_t C = 0; C < Env.Columns.size(); ++C) {
    if (!Env.Columns[C]->isVariable())
      continue;
    auto [It, Inserted] = Leader.emplace(Reps[C], Env.Columns[C]);
    if (!Inserted)
      Out.emplace_back(It->second, Env.Columns[C]);
  }
  return Out;
}

std::optional<Term>
AffineDomain::alternate(const Conjunction &E, Term Var,
                        const std::vector<Term> &Avoid) const {
  if (E.isBottom())
    return std::nullopt;
  assert(Var->isVariable() && "alternate target must be a variable");
  Env Env;
  Env.addIndeterminates(context(), E);
  auto VarIt = Env.Index.find(Var);
  if (VarIt == Env.Index.end())
    return std::nullopt;
  AffineSystem<Rational> S = toSystem(E, Env);
  if (S.isInconsistent())
    return std::nullopt;
  // A column is unusable if its term mentions Var or any avoided variable.
  std::vector<bool> Mask(Env.Columns.size(), false);
  for (size_t C = 0; C < Env.Columns.size(); ++C) {
    if (C == VarIt->second)
      continue;
    if (occursIn(Var, Env.Columns[C])) {
      Mask[C] = true;
      continue;
    }
    for (Term V : Avoid)
      if (occursIn(V, Env.Columns[C])) {
        Mask[C] = true;
        break;
      }
  }
  std::optional<LinRow<Rational>> Row = S.solveFor(VarIt->second, Mask);
  if (!Row)
    return std::nullopt;
  LinearExpr Expr((*Row)[Env.Columns.size()]);
  for (size_t C = 0; C < Env.Columns.size(); ++C)
    if (!(*Row)[C].isZero())
      Expr.addTerm(Env.Columns[C], (*Row)[C]);
  return Expr.toTerm(context());
}

std::vector<std::pair<Term, Term>>
AffineDomain::alternateBatch(const Conjunction &E,
                             const std::vector<Term> &Targets) const {
  std::vector<std::pair<Term, Term>> Out;
  if (E.isBottom())
    return Out;
  Env Env;
  Env.addIndeterminates(context(), E);
  AffineSystem<Rational> S = toSystem(E, Env);
  if (S.isInconsistent())
    return Out;
  // Target columns: the target variables themselves plus every opaque
  // column whose term mentions one (those may not appear in definitions).
  std::vector<bool> Mask(Env.Columns.size(), false);
  bool AnyTarget = false;
  for (size_t C = 0; C < Env.Columns.size(); ++C)
    for (Term V : Targets)
      if (occursIn(V, Env.Columns[C])) {
        Mask[C] = true;
        AnyTarget |= Env.Columns[C]->isVariable();
        break;
      }
  if (!AnyTarget)
    return Out;
  for (auto &[Col, Row] : S.solveForMany(Mask)) {
    if (!Env.Columns[Col]->isVariable())
      continue; // Opaque columns are not QSaturation targets.
    LinearExpr Expr(Row[Env.Columns.size()]);
    for (size_t C = 0; C < Env.Columns.size(); ++C)
      if (!Row[C].isZero())
        Expr.addTerm(Env.Columns[C], Row[C]);
    Out.emplace_back(Env.Columns[Col], Expr.toTerm(context()));
  }
  return Out;
}
