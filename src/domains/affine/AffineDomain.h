//===- domains/affine/AffineDomain.h - Karr's affine equalities -*- C++ -*-===//
///
/// \file
/// The lattice of affine (linear) equalities between program variables --
/// Karr's domain [Karr 76], the paper's running "linear arithmetic with
/// only equality" logical lattice.  Join is the affine hull, existential
/// quantification is Gaussian elimination, VE_T falls out of canonical
/// variable representatives, and Alternate_T solves the projected system.
///
/// Maximal non-arithmetic subterms are treated as opaque indeterminates,
/// which keeps the domain sound on impure input (and is exactly the
/// behaviour purification relies on being unnecessary for pure input).
///
//===----------------------------------------------------------------------===//

#ifndef CAI_DOMAINS_AFFINE_AFFINEDOMAIN_H
#define CAI_DOMAINS_AFFINE_AFFINEDOMAIN_H

#include "linalg/AffineSystem.h"
#include "term/LinearExpr.h"
#include "theory/LogicalLattice.h"

#include <map>

namespace cai {

/// The affine-equality (Karr) domain over the rationals.
class AffineDomain : public LogicalLattice {
public:
  explicit AffineDomain(TermContext &Ctx) : LogicalLattice(Ctx) {}

  std::string name() const override { return "affine"; }

  bool ownsFunction(Symbol) const override { return false; }
  bool ownsPredicate(Symbol) const override { return false; }
  bool ownsNumerals() const override { return true; }

  Conjunction join(const Conjunction &A, const Conjunction &B) const override;
  Conjunction existQuant(const Conjunction &E,
                         const std::vector<Term> &Vars) const override;
  bool entails(const Conjunction &E, const Atom &A) const override;
  bool isUnsat(const Conjunction &E) const override;
  std::vector<std::pair<Term, Term>>
  impliedVarEqualities(const Conjunction &E) const override;
  std::optional<Term> alternate(const Conjunction &E, Term Var,
                                const std::vector<Term> &Avoid) const override;
  std::vector<std::pair<Term, Term>>
  alternateBatch(const Conjunction &E,
                 const std::vector<Term> &Targets) const override;

private:
  /// The column space shared by one operation: terms acting as
  /// indeterminates, with their index.
  struct Env {
    std::vector<Term> Columns;
    std::map<Term, size_t, TermStructLess> Index;

    void addIndeterminates(const TermContext &Ctx, const Conjunction &E);
    void addIndeterminates(const TermContext &Ctx, const Atom &A);
    void add(Term T);
  };

  AffineSystem<Rational> toSystem(const Conjunction &E, const Env &Env) const;
  Conjunction fromSystem(const AffineSystem<Rational> &S,
                         const Env &Env) const;
  /// Converts atom lhs = rhs into a row over \p Env; nullopt when the atom
  /// is not a linear equality (dropped: sound over-approximation).
  std::optional<LinRow<Rational>> rowOf(const Atom &A,
                                             const Env &Env) const;
};

} // namespace cai

#endif // CAI_DOMAINS_AFFINE_AFFINEDOMAIN_H
