//===- domains/parity/ParityDomain.cpp - The parity domain -----------------===//

#include "domains/parity/ParityDomain.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

using namespace cai;

void ParityDomain::Env::add(Term T) {
  if (Index.emplace(T, Columns.size()).second)
    Columns.push_back(T);
}

/// True if every coefficient and the constant are integers.
static bool isIntegral(const LinearExpr &L) {
  for (const auto &[Col, C] : L.terms())
    if (!C.isInteger())
      return false;
  return L.constant().isInteger();
}

void ParityDomain::addAtomIndeterminates(Env &Env, const Atom &A) const {
  const TermContext &Ctx = context();
  bool Relevant = A.predicate() == Ctx.eqSymbol() ||
                  A.predicate() == EvenPred || A.predicate() == OddPred;
  if (!Relevant)
    return;
  for (Term Side : A.args()) {
    std::optional<LinearExpr> L = LinearExpr::fromTerm(Ctx, Side);
    if (!L)
      return;
    for (const auto &[T, C] : L->terms())
      Env.add(T);
  }
}

ParityDomain::Env
ParityDomain::buildEnv(std::initializer_list<const Conjunction *> Es,
                       const Atom *Extra) const {
  Env Out;
  for (const Conjunction *E : Es) {
    if (E->isBottom())
      continue;
    for (const Atom &A : E->atoms())
      addAtomIndeterminates(Out, A);
  }
  if (Extra)
    addAtomIndeterminates(Out, *Extra);
  return Out;
}

std::optional<LinearExpr> ParityDomain::linearOf(Term T,
                                                 const Env &Env) const {
  std::optional<LinearExpr> L = LinearExpr::fromTerm(context(), T);
  if (!L)
    return std::nullopt;
  for (const auto &[Col, C] : L->terms())
    if (!Env.Index.count(Col))
      return std::nullopt;
  return L;
}

ParityDomain::State ParityDomain::toState(const Conjunction &E,
                                          const Env &Env) const {
  const TermContext &Ctx = context();
  size_t N = Env.Columns.size();
  State S(N);
  if (E.isBottom()) {
    S.Exact = AffineSystem<Rational>::inconsistent(N);
    S.Mod2 = AffineSystem<GF2>::inconsistent(N);
    return S;
  }

  auto IsOddInt = [](const Rational &R) {
    assert(R.isInteger() && "parity row must be integral");
    return !(R.numerator() % BigInt(2)).isZero();
  };
  auto Mod2Row = [&](const LinearExpr &L, bool Odd) {
    // even(L) with L = sum a_i x_i + c becomes
    // sum (a_i mod 2) x_i = c mod 2 over GF(2); odd flips the constant.
    LinRow<GF2> Row(N + 1);
    for (const auto &[Col, C] : L.terms())
      Row[Env.Index.at(Col)] += GF2(IsOddInt(C));
    bool CBit = IsOddInt(L.constant());
    Row[N] = GF2(Odd ? !CBit : CBit);
    S.Mod2.addRow(std::move(Row));
  };

  for (const Atom &A : E.atoms()) {
    if (A.predicate() == Ctx.eqSymbol()) {
      std::optional<LinearExpr> Lhs = linearOf(A.lhs(), Env);
      std::optional<LinearExpr> Rhs = linearOf(A.rhs(), Env);
      if (!Lhs || !Rhs)
        continue;
      LinearExpr Diff = *Lhs - *Rhs;
      LinRow<Rational> Row(N + 1);
      for (const auto &[Col, C] : Diff.terms())
        Row[Env.Index.at(Col)] = C;
      Row[N] = -Diff.constant();
      S.Exact.addRow(std::move(Row));
      // Shadow into GF(2): the difference is even (equal integers).
      LinearExpr Shadow = Diff;
      Shadow.normalizeIntegral(/*NormalizeSign=*/false);
      Mod2Row(Shadow, /*Odd=*/false);
      continue;
    }
    if (A.predicate() == EvenPred || A.predicate() == OddPred) {
      std::optional<LinearExpr> L = linearOf(A.args()[0], Env);
      if (!L || !isIntegral(*L))
        continue; // Parity of a non-integral term is not modeled.
      Mod2Row(*L, A.predicate() == OddPred);
    }
  }
  return S;
}

Conjunction ParityDomain::fromState(const State &S, const Env &Env) const {
  if (S.Exact.isInconsistent() || S.Mod2.isInconsistent())
    return Conjunction::bottom();
  TermContext &Ctx = context();
  Conjunction Out;
  for (const LinRow<Rational> &Row : S.Exact.rows()) {
    LinearExpr Lhs;
    for (size_t C = 0; C < Env.Columns.size(); ++C)
      if (!Row[C].isZero())
        Lhs.addTerm(Env.Columns[C], Row[C]);
    LinearExpr Rhs(Row[Env.Columns.size()]);
    LinearExpr Diff = Lhs - Rhs;
    Rational Scale = Diff.normalizeIntegral(/*NormalizeSign=*/true);
    Lhs = Lhs.scaled(Scale);
    Rhs = Rhs.scaled(Scale);
    Out.add(Atom::mkEq(Ctx, Lhs.toTerm(Ctx), Rhs.toTerm(Ctx)));
  }
  for (const LinRow<GF2> &Row : S.Mod2.rows()) {
    LinearExpr L;
    for (size_t C = 0; C < Env.Columns.size(); ++C)
      if (Row[C].isOne())
        L.addTerm(Env.Columns[C], Rational(1));
    if (L.isConstant())
      continue; // 0 = 0 carries no information (inconsistency was checked).
    Symbol Pred = Row[Env.Columns.size()].isOne() ? OddPred : EvenPred;
    Out.add(Atom(Pred, {L.toTerm(Ctx)}));
  }
  return Out;
}

Conjunction ParityDomain::join(const Conjunction &A,
                               const Conjunction &B) const {
  CAI_TRACE_SPAN("parity.join", "domain");
  CAI_METRIC_INC("domain.parity.joins");
  if (A.isBottom() || isUnsat(A))
    return B;
  if (B.isBottom() || isUnsat(B))
    return A;
  Env Env = buildEnv({&A, &B});
  State SA = toState(A, Env), SB = toState(B, Env);
  State J(Env.Columns.size());
  J.Exact = AffineSystem<Rational>::join(SA.Exact, SB.Exact);
  J.Mod2 = AffineSystem<GF2>::join(SA.Mod2, SB.Mod2);
  return fromState(J, Env);
}

Conjunction ParityDomain::existQuant(const Conjunction &E,
                                     const std::vector<Term> &Vars) const {
  if (E.isBottom())
    return E;
  Env Env = buildEnv({&E});
  State S = toState(E, Env);
  std::vector<bool> Mask(Env.Columns.size(), false);
  for (size_t C = 0; C < Env.Columns.size(); ++C)
    for (Term V : Vars)
      if (occursIn(V, Env.Columns[C])) {
        Mask[C] = true;
        break;
      }
  State P(Env.Columns.size());
  P.Exact = S.Exact.project(Mask);
  P.Mod2 = S.Mod2.project(Mask);
  return fromState(P, Env);
}

bool ParityDomain::entails(const Conjunction &E, const Atom &A) const {
  const TermContext &Ctx = context();
  if (E.isBottom())
    return true;
  if (A.isTrivial(Ctx))
    return true;
  Env Env = buildEnv({&E}, &A);
  State S = toState(E, Env);
  if (S.Exact.isInconsistent() || S.Mod2.isInconsistent())
    return true;
  if (A.predicate() == Ctx.eqSymbol()) {
    std::optional<LinearExpr> Lhs = linearOf(A.lhs(), Env);
    std::optional<LinearExpr> Rhs = linearOf(A.rhs(), Env);
    if (!Lhs || !Rhs)
      return false;
    LinearExpr Diff = *Lhs - *Rhs;
    LinRow<Rational> Row(Env.Columns.size() + 1);
    for (const auto &[Col, C] : Diff.terms())
      Row[Env.Index.at(Col)] = C;
    Row[Env.Columns.size()] = -Diff.constant();
    return S.Exact.entails(std::move(Row));
  }
  if (A.predicate() == EvenPred || A.predicate() == OddPred) {
    std::optional<LinearExpr> L = linearOf(A.args()[0], Env);
    if (!L || !isIntegral(*L))
      return false;
    LinRow<GF2> Row(Env.Columns.size() + 1);
    for (const auto &[Col, C] : L->terms())
      Row[Env.Index.at(Col)] += GF2(!(C.numerator() % BigInt(2)).isZero());
    bool CBit = !(L->constant().numerator() % BigInt(2)).isZero();
    bool Odd = A.predicate() == OddPred;
    Row[Env.Columns.size()] = GF2(Odd ? !CBit : CBit);
    return S.Mod2.entails(std::move(Row));
  }
  return false;
}

bool ParityDomain::isUnsat(const Conjunction &E) const {
  if (E.isBottom())
    return true;
  Env Env = buildEnv({&E});
  State S = toState(E, Env);
  return S.Exact.isInconsistent() || S.Mod2.isInconsistent();
}

std::vector<std::pair<Term, Term>>
ParityDomain::impliedVarEqualities(const Conjunction &E) const {
  std::vector<std::pair<Term, Term>> Out;
  if (E.isBottom())
    return Out;
  Env Env = buildEnv({&E});
  State S = toState(E, Env);
  if (S.Exact.isInconsistent())
    return Out;
  std::vector<LinRow<Rational>> Reps = S.Exact.varRepresentatives();
  std::map<LinRow<Rational>, Term> Leader;
  for (size_t C = 0; C < Env.Columns.size(); ++C) {
    if (!Env.Columns[C]->isVariable())
      continue;
    auto [It, Inserted] = Leader.emplace(Reps[C], Env.Columns[C]);
    if (!Inserted)
      Out.emplace_back(It->second, Env.Columns[C]);
  }
  return Out;
}

std::optional<Term>
ParityDomain::alternate(const Conjunction &E, Term Var,
                        const std::vector<Term> &Avoid) const {
  if (E.isBottom())
    return std::nullopt;
  Env Env = buildEnv({&E});
  auto VarIt = Env.Index.find(Var);
  if (VarIt == Env.Index.end())
    return std::nullopt;
  State S = toState(E, Env);
  if (S.Exact.isInconsistent())
    return std::nullopt;
  std::vector<bool> Mask(Env.Columns.size(), false);
  for (size_t C = 0; C < Env.Columns.size(); ++C) {
    if (C == VarIt->second)
      continue;
    if (occursIn(Var, Env.Columns[C])) {
      Mask[C] = true;
      continue;
    }
    for (Term V : Avoid)
      if (occursIn(V, Env.Columns[C])) {
        Mask[C] = true;
        break;
      }
  }
  std::optional<LinRow<Rational>> Row =
      S.Exact.solveFor(VarIt->second, Mask);
  if (!Row)
    return std::nullopt;
  LinearExpr Expr((*Row)[Env.Columns.size()]);
  for (size_t C = 0; C < Env.Columns.size(); ++C)
    if (!(*Row)[C].isZero())
      Expr.addTerm(Env.Columns[C], (*Row)[C]);
  return Expr.toTerm(context());
}

std::vector<std::pair<Term, Term>>
ParityDomain::alternateBatch(const Conjunction &E,
                             const std::vector<Term> &Targets) const {
  std::vector<std::pair<Term, Term>> Out;
  if (E.isBottom())
    return Out;
  Env Env = buildEnv({&E});
  State S = toState(E, Env);
  if (S.Exact.isInconsistent())
    return Out;
  std::vector<bool> Mask(Env.Columns.size(), false);
  bool AnyTarget = false;
  for (size_t C = 0; C < Env.Columns.size(); ++C)
    for (Term V : Targets)
      if (occursIn(V, Env.Columns[C])) {
        Mask[C] = true;
        AnyTarget |= Env.Columns[C]->isVariable();
        break;
      }
  if (!AnyTarget)
    return Out;
  for (auto &[Col, Row] : S.Exact.solveForMany(Mask)) {
    if (!Env.Columns[Col]->isVariable())
      continue;
    LinearExpr Expr(Row[Env.Columns.size()]);
    for (size_t C = 0; C < Env.Columns.size(); ++C)
      if (!Row[C].isZero())
        Expr.addTerm(Env.Columns[C], Row[C]);
    Out.emplace_back(Env.Columns[Col], Expr.toTerm(context()));
  }
  return Out;
}
