//===- domains/parity/ParityDomain.h - The parity domain --------*- C++ -*-===//
///
/// \file
/// The logical lattice over the paper's "theory of parity" (Section 2):
/// signature {=, even, odd, +, -, 0, 1}.  An element is a conjunction of
/// linear equalities plus even/odd facts about linear terms.  Internally
/// this is two affine systems sharing one column space: one over the
/// rationals (the equalities) and one over GF(2) (the congruences mod 2,
/// Granger-style), with every equality also shadowed into the GF(2) system.
/// Join, projection and entailment are the generic AffineSystem operations
/// applied to both layers.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_DOMAINS_PARITY_PARITYDOMAIN_H
#define CAI_DOMAINS_PARITY_PARITYDOMAIN_H

#include "linalg/AffineSystem.h"
#include "support/GF2.h"
#include "term/LinearExpr.h"
#include "theory/LogicalLattice.h"

#include <map>

namespace cai {

/// The parity (even/odd + linear equalities) domain.
class ParityDomain : public LogicalLattice {
public:
  explicit ParityDomain(TermContext &Ctx)
      : LogicalLattice(Ctx), EvenPred(Ctx.getPredicate("even", 1)),
        OddPred(Ctx.getPredicate("odd", 1)) {}

  std::string name() const override { return "parity"; }

  bool ownsFunction(Symbol) const override { return false; }
  bool ownsPredicate(Symbol S) const override {
    return S == EvenPred || S == OddPred;
  }
  bool ownsNumerals() const override { return true; }

  Symbol evenPred() const { return EvenPred; }
  Symbol oddPred() const { return OddPred; }

  Conjunction join(const Conjunction &A, const Conjunction &B) const override;
  Conjunction existQuant(const Conjunction &E,
                         const std::vector<Term> &Vars) const override;
  bool entails(const Conjunction &E, const Atom &A) const override;
  bool isUnsat(const Conjunction &E) const override;
  std::vector<std::pair<Term, Term>>
  impliedVarEqualities(const Conjunction &E) const override;
  std::optional<Term> alternate(const Conjunction &E, Term Var,
                                const std::vector<Term> &Avoid) const override;
  std::vector<std::pair<Term, Term>>
  alternateBatch(const Conjunction &E,
                 const std::vector<Term> &Targets) const override;

private:
  struct Env {
    std::vector<Term> Columns;
    std::map<Term, size_t, TermStructLess> Index;
    void add(Term T);
  };
  /// Both layers over one column space.
  struct State {
    AffineSystem<Rational> Exact;
    AffineSystem<GF2> Mod2;
    State(size_t N) : Exact(N), Mod2(N) {}
  };

  Env buildEnv(std::initializer_list<const Conjunction *> Es,
               const Atom *Extra = nullptr) const;
  void addAtomIndeterminates(Env &Env, const Atom &A) const;
  State toState(const Conjunction &E, const Env &Env) const;
  Conjunction fromState(const State &S, const Env &Env) const;
  /// Linear view of an atom argument / equality difference over Env, made
  /// integral; nullopt when not linear or containing unknown columns.
  std::optional<LinearExpr> linearOf(Term T, const Env &Env) const;

  Symbol EvenPred, OddPred;
};

} // namespace cai

#endif // CAI_DOMAINS_PARITY_PARITYDOMAIN_H
