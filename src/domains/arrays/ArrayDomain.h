//===- domains/arrays/ArrayDomain.h - Arrays (convex fragment) -*- C++ -*-===//
///
/// \file
/// The theory of arrays with select/update, in its convex Horn fragment --
/// the paper's Section 7 names "a precise analysis for non-convex theories
/// (e.g., the theory of arrays)" as future work; this domain implements
/// the sound convex part that the combination framework can host today:
///
///   read-over-write (hit):  select(update(a, i, v), i) = v
///   congruence:             the usual equality axioms
///
/// The non-convex axiom select(update(a,i,v), j) = select(a,j) \/ i = j is
/// deliberately NOT decided (case splits would break both convexity and
/// the Nelson-Oppen exchange); its guarded instance fires only when the
/// indices are already known equal or the write is known irrelevant
/// syntactically-by-congruence.  The domain is therefore sound and
/// complete for the Horn fragment, and a documented under-approximation
/// of full array reasoning -- exactly the trade the paper anticipates.
///
/// Memory is modeled the way Section 4 suggests: "Memory, for example,
/// can be modeled using array variables and select and update
/// expressions" -- see examples/memory_cells.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_DOMAINS_ARRAYS_ARRAYDOMAIN_H
#define CAI_DOMAINS_ARRAYS_ARRAYDOMAIN_H

#include "domains/uf/CongruenceClosure.h"
#include "theory/LogicalLattice.h"

namespace cai {

/// The array (select/update) domain, convex fragment.
class ArrayDomain : public LogicalLattice {
public:
  explicit ArrayDomain(TermContext &Ctx)
      : LogicalLattice(Ctx), Select(Ctx.getFunction("select", 2)),
        Update(Ctx.getFunction("update", 3)) {}

  std::string name() const override { return "arrays"; }

  bool ownsFunction(Symbol S) const override {
    return S == Select || S == Update;
  }
  bool ownsPredicate(Symbol) const override { return false; }
  bool ownsNumerals() const override { return false; }

  Symbol selectSym() const { return Select; }
  Symbol updateSym() const { return Update; }

  Conjunction join(const Conjunction &A, const Conjunction &B) const override;
  Conjunction existQuant(const Conjunction &E,
                         const std::vector<Term> &Vars) const override;
  bool entails(const Conjunction &E, const Atom &A) const override;
  bool isUnsat(const Conjunction &E) const override { return E.isBottom(); }
  std::vector<std::pair<Term, Term>>
  impliedVarEqualities(const Conjunction &E) const override;
  std::optional<Term> alternate(const Conjunction &E, Term Var,
                                const std::vector<Term> &Avoid) const override;
  std::vector<std::pair<Term, Term>>
  alternateBatch(const Conjunction &E,
                 const std::vector<Term> &Targets) const override;
  Conjunction widen(const Conjunction &Old,
                    const Conjunction &New) const override;

  /// Runs the read-over-write rules to fixpoint on an existing closure
  /// (exposed for tests).
  void applyArrayRules(CongruenceClosure &CC) const;

private:
  /// Builds a closure of \p E with select-over-update facts materialized
  /// and the rules applied.
  CongruenceClosure closureOf(const Conjunction &E) const;

  Symbol Select, Update;
};

} // namespace cai

#endif // CAI_DOMAINS_ARRAYS_ARRAYDOMAIN_H
