//===- domains/arrays/ArrayDomain.cpp - Arrays (convex fragment) ----------===//

#include "domains/arrays/ArrayDomain.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include "domains/uf/UFJoin.h"

#include <algorithm>

using namespace cai;

void ArrayDomain::applyArrayRules(CongruenceClosure &CC) const {
  // Read-over-write hit: for every select(s, i) whose array argument's
  // class contains update(a, j, v) with i congruent to j, merge the
  // select with v.  Quadratic scan to fixpoint, like the list rules.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    unsigned Count = CC.numNodes();
    for (unsigned U = 0; U < Count; ++U) {
      if (!CC.isApp(U) || CC.symbolOf(U) != Select)
        continue;
      unsigned ArrClass = CC.find(CC.argsOf(U)[0]);
      unsigned IdxClass = CC.find(CC.argsOf(U)[1]);
      for (unsigned M = 0; M < Count; ++M) {
        if (!CC.isApp(M) || CC.symbolOf(M) != Update || CC.find(M) != ArrClass)
          continue;
        if (CC.find(CC.argsOf(M)[1]) != IdxClass)
          continue; // Indices not known equal: no convex conclusion.
        unsigned Value = CC.argsOf(M)[2];
        if (CC.find(U) != CC.find(Value)) {
          CC.merge(U, Value);
          Changed = true;
        }
      }
    }
  }
}

CongruenceClosure ArrayDomain::closureOf(const Conjunction &E) const {
  CongruenceClosure CC(context());
  CC.addConjunction(E);
  for (Term V : E.vars())
    CC.addTerm(V);
  // Materialize the hit read for every update node so joins/projections
  // can speak about it even when it does not occur in the input.
  TermContext &Ctx = context();
  unsigned Count = CC.numNodes();
  for (unsigned N = 0; N < Count; ++N) {
    if (!CC.isApp(N) || CC.symbolOf(N) != Update)
      continue;
    Term UpdateTerm = CC.termOf(N);
    CC.addTerm(Ctx.mkApp(Select, {UpdateTerm, UpdateTerm->args()[1]}));
  }
  applyArrayRules(CC);
  return CC;
}

Conjunction ArrayDomain::join(const Conjunction &A,
                              const Conjunction &B) const {
  CAI_TRACE_SPAN("arrays.join", "domain");
  CAI_METRIC_INC("domain.arrays.joins");
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  CongruenceClosure CC1 = closureOf(A);
  CongruenceClosure CC2 = closureOf(B);
  std::vector<Term> Shared = A.vars();
  for (Term V : B.vars())
    Shared.push_back(V);
  std::sort(Shared.begin(), Shared.end(), TermStructLess());
  Shared.erase(std::unique(Shared.begin(), Shared.end()), Shared.end());
  return ufJoinClosed(context(), CC1, CC2, Shared);
}

Conjunction ArrayDomain::existQuant(const Conjunction &E,
                                    const std::vector<Term> &Vars) const {
  if (E.isBottom())
    return E;
  CongruenceClosure CC = closureOf(E);
  return ufProjectClosed(context(), CC, Vars);
}

bool ArrayDomain::entails(const Conjunction &E, const Atom &A) const {
  if (E.isBottom())
    return true;
  if (A.isTrivial(context()))
    return true;
  if (A.predicate() != context().eqSymbol())
    return false;
  CongruenceClosure CC = closureOf(E);
  CC.addTerm(A.lhs());
  CC.addTerm(A.rhs());
  applyArrayRules(CC); // Query terms can enable new hit reads.
  return CC.areEqual(A.lhs(), A.rhs());
}

std::vector<std::pair<Term, Term>>
ArrayDomain::impliedVarEqualities(const Conjunction &E) const {
  std::vector<std::pair<Term, Term>> Out;
  if (E.isBottom())
    return Out;
  CongruenceClosure CC = closureOf(E);
  for (const std::vector<unsigned> &Class : CC.allClasses()) {
    Term Leader = nullptr;
    for (unsigned N : Class) {
      Term T = CC.termOf(N);
      if (!T->isVariable())
        continue;
      if (!Leader)
        Leader = T;
      else
        Out.emplace_back(Leader, T);
    }
  }
  return Out;
}

std::optional<Term>
ArrayDomain::alternate(const Conjunction &E, Term Var,
                       const std::vector<Term> &Avoid) const {
  if (E.isBottom())
    return std::nullopt;
  CongruenceClosure CC = closureOf(E);
  return ufAlternateClosed(context(), CC, Var, Avoid);
}

std::vector<std::pair<Term, Term>>
ArrayDomain::alternateBatch(const Conjunction &E,
                            const std::vector<Term> &Targets) const {
  if (E.isBottom())
    return {};
  CongruenceClosure CC = closureOf(E);
  return ufAlternateBatchClosed(context(), CC, Targets);
}

Conjunction ArrayDomain::widen(const Conjunction &Old,
                               const Conjunction &New) const {
  Conjunction Joined = join(Old, New);
  if (Joined.isBottom())
    return Joined;
  // Same depth cap as the other E-graph domains; update chains grow one
  // level per loop iteration (m := update(m, i, v)).
  Conjunction Out;
  for (const Atom &A : Joined.atoms()) {
    bool TooDeep = false;
    for (Term Arg : A.args())
      TooDeep |= termDepth(Arg) > 16;
    if (!TooDeep)
      Out.add(A);
  }
  return Out;
}
