//===- net/ShardRouter.h - Fingerprint-sharded backend routing --*- C++ -*-===//
///
/// \file
/// Routing for `cai-shard`: N cai-serve backends behave as one cache by
/// partitioning the canonical fingerprint space -- request R goes to
/// backend `low64(fingerprint(R)) mod N`, so every submission of the
/// same job (same program text, same result-affecting options) lands on
/// the same process and therefore the same ResultCache + persist log.
/// The fingerprint is deterministic across processes and platforms,
/// which makes the placement deterministic too: re-running a corpus
/// against the same shard count reuses every shard-local cache entry.
///
/// The router is a thin synchronous fan-out: one Conn per backend,
/// requests forwarded verbatim as protocol lines.  Determinism of the
/// *output* order is the caller's job (cai-shard forwards one request at
/// a time and relays its response before reading the next).
///
//===----------------------------------------------------------------------===//

#ifndef CAI_NET_SHARDROUTER_H
#define CAI_NET_SHARDROUTER_H

#include "net/Conn.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cai {
namespace net {

/// The low 64 bits of a canonical hex fingerprint (its last 16 hex
/// digits; shorter strings use what is there).  Non-hex characters
/// contribute 0 -- garbage in, deterministic garbage out.
uint64_t fingerprintLow64(const std::string &Fingerprint);

class ShardRouter {
public:
  /// Connects to every backend ("host:port" each).  All-or-nothing:
  /// returns false (and closes the partial set) if any fails.
  bool connect(const std::vector<std::string> &Backends, std::string *Error);

  size_t numBackends() const { return Conns.size(); }

  /// The backend owning \p Fingerprint: low64(fp) mod N.
  unsigned route(const std::string &Fingerprint) const {
    return Conns.empty()
               ? 0
               : unsigned(fingerprintLow64(Fingerprint) % Conns.size());
  }

  Conn &backend(unsigned I) { return Conns[I]; }

  void closeAll();

private:
  std::vector<Conn> Conns;
};

} // namespace net
} // namespace cai

#endif // CAI_NET_SHARDROUTER_H
