//===- net/ShardRouter.cpp - Fingerprint-sharded backend routing ----------===//

#include "net/ShardRouter.h"

namespace cai {
namespace net {

uint64_t fingerprintLow64(const std::string &Fingerprint) {
  size_t Start = Fingerprint.size() > 16 ? Fingerprint.size() - 16 : 0;
  uint64_t V = 0;
  for (size_t I = Start; I < Fingerprint.size(); ++I) {
    char C = Fingerprint[I];
    unsigned D = 0;
    if (C >= '0' && C <= '9')
      D = unsigned(C - '0');
    else if (C >= 'a' && C <= 'f')
      D = unsigned(C - 'a') + 10;
    else if (C >= 'A' && C <= 'F')
      D = unsigned(C - 'A') + 10;
    V = (V << 4) | D;
  }
  return V;
}

bool ShardRouter::connect(const std::vector<std::string> &Backends,
                          std::string *Error) {
  closeAll();
  for (const std::string &Spec : Backends) {
    std::string Host;
    uint16_t Port = 0;
    if (!parseHostPort(Spec, &Host, &Port)) {
      if (Error)
        *Error = "bad backend address '" + Spec + "' (want HOST:PORT)";
      closeAll();
      return false;
    }
    Conn C = Conn::connectTo(Host, Port, Error);
    if (!C.valid()) {
      closeAll();
      return false;
    }
    Conns.push_back(std::move(C));
  }
  return true;
}

void ShardRouter::closeAll() { Conns.clear(); }

} // namespace net
} // namespace cai
