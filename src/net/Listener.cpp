//===- net/Listener.cpp - Blocking TCP accept loop ------------------------===//

#include "net/Listener.h"
#include "net/Conn.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace cai {
namespace net {

bool Listener::listenOn(const std::string &HostPort, std::string *Error) {
  close();
  std::string Host;
  uint16_t WantPort = 0;
  if (!parseHostPort(HostPort, &Host, &WantPort)) {
    if (Error)
      *Error = "bad listen address '" + HostPort + "' (want HOST:PORT)";
    return false;
  }
  struct addrinfo Hints = {};
  Hints.ai_family = AF_INET;
  Hints.ai_socktype = SOCK_STREAM;
  Hints.ai_flags = AI_PASSIVE;
  struct addrinfo *Res = nullptr;
  std::string PortStr = std::to_string(WantPort);
  int Rc = ::getaddrinfo(Host.c_str(), PortStr.c_str(), &Hints, &Res);
  if (Rc != 0) {
    if (Error)
      *Error = "cannot resolve " + Host + ": " + ::gai_strerror(Rc);
    return false;
  }
  for (struct addrinfo *A = Res; A; A = A->ai_next) {
    int S = ::socket(A->ai_family, A->ai_socktype | SOCK_CLOEXEC,
                     A->ai_protocol);
    if (S < 0)
      continue;
    int One = 1;
    ::setsockopt(S, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    if (::bind(S, A->ai_addr, A->ai_addrlen) == 0 && ::listen(S, 64) == 0) {
      Fd = S;
      break;
    }
    ::close(S);
  }
  ::freeaddrinfo(Res);
  if (Fd < 0) {
    if (Error)
      *Error = "cannot listen on " + HostPort + ": " + std::strerror(errno);
    return false;
  }
  struct sockaddr_in Addr;
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<struct sockaddr *>(&Addr), &Len) ==
      0)
    Port = ntohs(Addr.sin_port);
  return true;
}

int Listener::acceptConn(bool *Interrupted) {
  if (Interrupted)
    *Interrupted = false;
  for (;;) {
    int C = ::accept(Fd, nullptr, nullptr);
    if (C >= 0) {
      int One = 1;
      ::setsockopt(C, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
      return C;
    }
    if (errno == EINTR || errno == EBADF || errno == EINVAL) {
      // A signal, or close() pulled the fd out from under us: the
      // shutdown path, not an error.
      if (Interrupted)
        *Interrupted = true;
      return -1;
    }
    if (errno == ECONNABORTED)
      continue; // The peer gave up between SYN and accept; next.
    return -1;
  }
}

void Listener::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
}

} // namespace net
} // namespace cai
