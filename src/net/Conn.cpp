//===- net/Conn.cpp - Line-oriented socket connection ---------------------===//

#include "net/Conn.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace cai {
namespace net {

bool parseHostPort(const std::string &Spec, std::string *Host,
                   uint16_t *Port) {
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos)
    return false;
  std::string H = Spec.substr(0, Colon);
  std::string P = Spec.substr(Colon + 1);
  if (P.empty() || P.find_first_not_of("0123456789") != std::string::npos)
    return false;
  unsigned long V = std::stoul(P);
  if (V > 65535)
    return false;
  *Host = H.empty() ? std::string("127.0.0.1") : H;
  *Port = uint16_t(V);
  return true;
}

Conn::Conn(Conn &&O) noexcept
    : Fd(std::exchange(O.Fd, -1)), Buf(std::move(O.Buf)),
      SawEof(O.SawEof), MaxLineBytes(O.MaxLineBytes) {}

Conn &Conn::operator=(Conn &&O) noexcept {
  if (this != &O) {
    close();
    Fd = std::exchange(O.Fd, -1);
    Buf = std::move(O.Buf);
    SawEof = O.SawEof;
    MaxLineBytes = O.MaxLineBytes;
  }
  return *this;
}

Conn Conn::connectTo(const std::string &Host, uint16_t Port,
                     std::string *Error) {
  struct addrinfo Hints = {};
  Hints.ai_family = AF_INET;
  Hints.ai_socktype = SOCK_STREAM;
  struct addrinfo *Res = nullptr;
  std::string PortStr = std::to_string(Port);
  int Rc = ::getaddrinfo(Host.c_str(), PortStr.c_str(), &Hints, &Res);
  if (Rc != 0) {
    if (Error)
      *Error = "cannot resolve " + Host + ": " + ::gai_strerror(Rc);
    return Conn();
  }
  int Fd = -1;
  for (struct addrinfo *A = Res; A; A = A->ai_next) {
    Fd = ::socket(A->ai_family, A->ai_socktype | SOCK_CLOEXEC, A->ai_protocol);
    if (Fd < 0)
      continue;
    if (::connect(Fd, A->ai_addr, A->ai_addrlen) == 0)
      break;
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Res);
  if (Fd < 0) {
    if (Error)
      *Error = "cannot connect to " + Host + ":" + PortStr + ": " +
               std::strerror(errno);
    return Conn();
  }
  // The protocol is request/response lines; latency beats batching.
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Conn(Fd);
}

void Conn::setReadTimeoutMs(unsigned Ms) {
  struct timeval Tv;
  Tv.tv_sec = Ms / 1000;
  Tv.tv_usec = (Ms % 1000) * 1000;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
}

Conn::ReadStatus Conn::readLine(std::string *Line) {
  for (;;) {
    size_t Nl = Buf.find('\n');
    if (Nl != std::string::npos) {
      size_t End = Nl;
      if (End > 0 && Buf[End - 1] == '\r')
        --End;
      Line->assign(Buf, 0, End);
      Buf.erase(0, Nl + 1);
      return ReadStatus::Line;
    }
    if (MaxLineBytes && Buf.size() > MaxLineBytes)
      return ReadStatus::TooLong;
    if (SawEof) {
      if (!Buf.empty()) {
        *Line = std::move(Buf);
        Buf.clear();
        return ReadStatus::Line;
      }
      return ReadStatus::Eof;
    }
    char Chunk[65536];
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N > 0) {
      Buf.append(Chunk, size_t(N));
      continue;
    }
    if (N == 0) {
      SawEof = true;
      continue; // Deliver any unterminated tail, then Eof.
    }
    if (errno == EINTR)
      return ReadStatus::Interrupted;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return ReadStatus::Timeout;
    return ReadStatus::Error;
  }
}

bool Conn::writeAll(const std::string &Data) {
  const char *P = Data.data();
  size_t Size = Data.size();
  while (Size) {
    ssize_t N = ::write(Fd, P, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Size -= size_t(N);
  }
  return true;
}

bool Conn::writeLine(const std::string &Data) {
  return writeAll(Data + "\n");
}

void Conn::shutdownBoth() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}

void Conn::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
  Buf.clear();
  SawEof = false;
}

} // namespace net
} // namespace cai
