//===- net/Conn.h - Line-oriented socket connection -------------*- C++ -*-===//
///
/// \file
/// One side of a TCP connection carrying the service's JSON-lines
/// protocol: a buffered line reader with a per-read timeout and a
/// max-line bound, plus a retrying whole-buffer writer.  Deliberately
/// blocking -- the service's concurrency lives in the scheduler's worker
/// pool, not in the transport, so the transport stays simple enough to
/// reason about byte-for-byte (the stdio-vs-TCP determinism test depends
/// on the framing being nothing but lines).
///
/// The timeout and line bound are the connection-level analogues of the
/// scheduler's per-job isolation: a stalled or hostile peer costs its own
/// connection a timeout or a too-long error, never the process.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_NET_CONN_H
#define CAI_NET_CONN_H

#include <cstdint>
#include <string>

namespace cai {
namespace net {

/// Splits "HOST:PORT" (host may be empty -> 127.0.0.1).  Returns false on
/// a missing/non-numeric port.
bool parseHostPort(const std::string &Spec, std::string *Host,
                   uint16_t *Port);

class Conn {
public:
  enum class ReadStatus : uint8_t {
    Line,        ///< One line delivered (terminator stripped).
    Eof,         ///< Peer closed; no more data.
    Timeout,     ///< No data within the read timeout.
    TooLong,     ///< Line exceeded the max-line bound; connection unusable.
    Interrupted, ///< read() hit EINTR (a signal; caller checks its flag).
    Error,       ///< Any other socket error.
  };

  Conn() = default;
  /// Takes ownership of \p Fd.
  explicit Conn(int Fd) : Fd(Fd) {}
  ~Conn() { close(); }

  Conn(Conn &&O) noexcept;
  Conn &operator=(Conn &&O) noexcept;
  Conn(const Conn &) = delete;
  Conn &operator=(const Conn &) = delete;

  /// Connects to HOST:PORT (numeric host or resolvable name).  Returns an
  /// invalid Conn and sets \p Error on failure.
  static Conn connectTo(const std::string &Host, uint16_t Port,
                        std::string *Error);

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Applies SO_RCVTIMEO; 0 disables the timeout.
  void setReadTimeoutMs(unsigned Ms);

  /// Caps one line's length (terminator excluded); longer input returns
  /// ReadStatus::TooLong.  0 = unlimited.
  void setMaxLineBytes(size_t N) { MaxLineBytes = N; }

  /// Reads one '\n'-terminated line into \p Line ('\n' and a preceding
  /// '\r' stripped).  At EOF an unterminated final line is still
  /// delivered once (getline semantics), then Eof.
  ReadStatus readLine(std::string *Line);

  /// Writes all of \p Data (retrying short writes); false on error.  The
  /// caller is expected to have ignored SIGPIPE process-wide.
  bool writeAll(const std::string &Data);

  /// Convenience: Data + '\n' in one write.
  bool writeLine(const std::string &Data);

  /// shutdown(2) both directions -- wakes a reader blocked in another
  /// thread (the listener's shutdown path); the fd stays owned.
  void shutdownBoth();

  void close();

private:
  int Fd = -1;
  std::string Buf;     ///< Bytes read but not yet returned.
  bool SawEof = false;
  size_t MaxLineBytes = 0;
};

} // namespace net
} // namespace cai

#endif // CAI_NET_CONN_H
