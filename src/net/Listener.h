//===- net/Listener.h - Blocking TCP accept loop ----------------*- C++ -*-===//
///
/// \file
/// The TCP front door of cai-serve: bind + listen + blocking accept.
/// Port 0 binds an ephemeral port (port() reports the real one; the test
/// harness writes it to --port-file).  accept() is installed *without*
/// SA_RESTART by the server's signal handler, so SIGINT/SIGTERM surface
/// here as EINTR -> Interrupted and the serve loop can drain and exit
/// cleanly instead of dying mid-write.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_NET_LISTENER_H
#define CAI_NET_LISTENER_H

#include <cstdint>
#include <string>

namespace cai {
namespace net {

class Listener {
public:
  Listener() = default;
  ~Listener() { close(); }
  Listener(const Listener &) = delete;
  Listener &operator=(const Listener &) = delete;

  /// Binds and listens on "HOST:PORT" (SO_REUSEADDR; port 0 = ephemeral).
  /// Returns false and sets \p Error on failure.
  bool listenOn(const std::string &HostPort, std::string *Error);

  /// The actually bound port (resolves port 0).
  uint16_t port() const { return Port; }

  bool valid() const { return Fd >= 0; }

  /// Blocks for one connection; returns its fd (>= 0).  On failure
  /// returns -1 with \p Interrupted set when a signal (EINTR) or a
  /// concurrent close() ended the wait -- the clean-shutdown path --
  /// and clear for genuine errors.
  int acceptConn(bool *Interrupted);

  void close();

private:
  int Fd = -1;
  uint16_t Port = 0;
};

} // namespace net
} // namespace cai

#endif // CAI_NET_LISTENER_H
