//===- support/BigInt.h - Arbitrary-precision signed integers --*- C++ -*-===//
//
// Part of the cai project: a reproduction of "Combining Abstract
// Interpreters" (Gulwani & Tiwari, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arbitrary-precision signed integer arithmetic.
///
/// The Karr domain (affine hulls), Fourier-Motzkin elimination and the exact
/// simplex all produce coefficient blow-up that genuinely overflows 64-bit
/// integers, so every numeric domain in this library is backed by BigInt
/// (through Rational).
///
/// Representation: a small-value fast path (plain int64_t, no heap
/// allocation -- the overwhelmingly common case in abstract interpretation)
/// with transparent promotion to sign-magnitude base-2^32 limbs,
/// least-significant first.  Results demote back to the small form whenever
/// they fit, so chains of small operations never touch the heap.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_SUPPORT_BIGINT_H
#define CAI_SUPPORT_BIGINT_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace cai {

/// An arbitrary-precision signed integer.
class BigInt {
public:
  /// Constructs zero.
  BigInt() = default;

  /// Constructs from a machine integer (small form; never allocates).
  BigInt(int64_t Value) : Small(Value) {}

  /// Parses a decimal string with an optional leading '-'.  Asserts on
  /// malformed input; use isValidDecimal to validate untrusted text first.
  static BigInt fromString(const std::string &Text);

  /// Returns true if \p Text is a well-formed decimal integer.
  static bool isValidDecimal(const std::string &Text);

  bool isZero() const { return !IsBig && Small == 0; }
  bool isNegative() const { return IsBig ? Negative : Small < 0; }
  bool isOne() const { return !IsBig && Small == 1; }

  /// Returns the value as int64_t.  Asserts if it does not fit.
  int64_t toInt64() const {
    assert(fitsInt64() && "value does not fit in int64_t");
    return Small;
  }

  /// True if the value fits in an int64_t.  (Big values are demoted
  /// eagerly, so the big form never holds an int64-representable value.)
  bool fitsInt64() const { return !IsBig; }

  // The four arithmetic operators run the small-small case inline (a single
  // overflow-checked machine operation -- this is the inner loop of every
  // rational Gauss-Jordan elimination) and fall back to the out-of-line
  // slow path on promotion or overflow.
  BigInt operator-() const {
    if (!IsBig && Small != INT64_MIN)
      return BigInt(-Small);
    return negSlow();
  }
  BigInt operator+(const BigInt &RHS) const {
    int64_t R;
    if (!IsBig && !RHS.IsBig && !__builtin_add_overflow(Small, RHS.Small, &R))
      return BigInt(R);
    return addSlow(RHS);
  }
  BigInt operator-(const BigInt &RHS) const {
    int64_t R;
    if (!IsBig && !RHS.IsBig && !__builtin_sub_overflow(Small, RHS.Small, &R))
      return BigInt(R);
    return subSlow(RHS);
  }
  BigInt operator*(const BigInt &RHS) const {
    int64_t R;
    if (!IsBig && !RHS.IsBig && !__builtin_mul_overflow(Small, RHS.Small, &R))
      return BigInt(R);
    return mulSlow(RHS);
  }

  /// Truncated division (C semantics: rounds toward zero).  Asserts on
  /// division by zero.
  BigInt operator/(const BigInt &RHS) const {
    if (!IsBig && !RHS.IsBig &&
        !(Small == INT64_MIN && RHS.Small == -1)) {
      assert(RHS.Small != 0 && "division by zero");
      return BigInt(Small / RHS.Small);
    }
    return divSlow(RHS);
  }

  /// Remainder matching operator/ (same sign as the dividend).
  BigInt operator%(const BigInt &RHS) const;

  BigInt &operator+=(const BigInt &RHS) { return *this = *this + RHS; }
  BigInt &operator-=(const BigInt &RHS) { return *this = *this - RHS; }
  BigInt &operator*=(const BigInt &RHS) { return *this = *this * RHS; }
  BigInt &operator/=(const BigInt &RHS) { return *this = *this / RHS; }

  bool operator==(const BigInt &RHS) const {
    if (IsBig != RHS.IsBig)
      return false; // Canonical forms: small values are never stored big.
    if (!IsBig)
      return Small == RHS.Small;
    return Negative == RHS.Negative && Limbs == RHS.Limbs;
  }
  bool operator!=(const BigInt &RHS) const { return !(*this == RHS); }
  bool operator<(const BigInt &RHS) const {
    if (!IsBig && !RHS.IsBig)
      return Small < RHS.Small;
    return lessSlow(RHS);
  }
  bool operator<=(const BigInt &RHS) const { return !(RHS < *this); }
  bool operator>(const BigInt &RHS) const { return RHS < *this; }
  bool operator>=(const BigInt &RHS) const { return !(*this < RHS); }

  /// Returns -1, 0, or 1 according to the sign of the value.
  int sign() const {
    if (IsBig)
      return Negative ? -1 : 1; // Big values are never zero.
    return Small < 0 ? -1 : Small > 0 ? 1 : 0;
  }

  /// Absolute value.
  BigInt abs() const;

  /// Greatest common divisor of the absolute values; gcd(0, x) == |x|.
  static BigInt gcd(const BigInt &A, const BigInt &B) {
    if (!A.IsBig && !B.IsBig) {
      uint64_t X = A.smallMagnitude(), Y = B.smallMagnitude();
      while (Y) {
        uint64_t R = X % Y;
        X = Y;
        Y = R;
      }
      // X <= max(|A|, |B|) <= 2^63; only 2^63 itself needs the big path.
      if (X <= static_cast<uint64_t>(INT64_MAX))
        return BigInt(static_cast<int64_t>(X));
    }
    return gcdSlow(A, B);
  }

  /// Least common multiple of the absolute values; lcm(0, x) == 0.
  static BigInt lcm(const BigInt &A, const BigInt &B);

  /// Raises \p Base to the non-negative power \p Exp.
  static BigInt pow(const BigInt &Base, unsigned Exp);

  /// Decimal rendering with a leading '-' for negative values.
  std::string toString() const;

  /// Hash suitable for unordered containers.
  size_t hash() const;

private:
  using Magnitude = std::vector<uint32_t>;

  /// Builds the canonical form from sign + magnitude, demoting when small.
  static BigInt fromMagnitude(bool Negative, Magnitude Limbs);
  /// Builds from a 128-bit signed intermediate (small-path overflow).
  static BigInt fromInt128(__int128 Value);

  // Out-of-line continuations of the inline operators: big operands or
  // small results that overflowed int64.
  BigInt negSlow() const;
  BigInt addSlow(const BigInt &RHS) const;
  BigInt subSlow(const BigInt &RHS) const;
  BigInt mulSlow(const BigInt &RHS) const;
  BigInt divSlow(const BigInt &RHS) const;
  bool lessSlow(const BigInt &RHS) const;
  static BigInt gcdSlow(const BigInt &A, const BigInt &B);

  /// Magnitude of the small value (valid only when !IsBig).
  uint64_t smallMagnitude() const {
    return Small < 0 ? ~static_cast<uint64_t>(Small) + 1
                     : static_cast<uint64_t>(Small);
  }
  /// Copies this value's magnitude into limb form.
  Magnitude magnitude() const;

  static int compareMagnitude(const Magnitude &A, const Magnitude &B);
  static Magnitude addMagnitude(const Magnitude &A, const Magnitude &B);
  /// Requires |A| >= |B|.
  static Magnitude subMagnitude(const Magnitude &A, const Magnitude &B);
  static Magnitude mulMagnitude(const Magnitude &A, const Magnitude &B);
  /// Knuth algorithm D; returns quotient magnitude and leaves the remainder
  /// magnitude in \p Rem.
  static Magnitude divMagnitude(const Magnitude &A, const Magnitude &B,
                                Magnitude &Rem);
  static void trim(Magnitude &Limbs);

  int64_t Small = 0;  ///< Valid when !IsBig.
  Magnitude Limbs;    ///< Valid when IsBig.
  bool Negative = false;
  bool IsBig = false;
};

} // namespace cai

#endif // CAI_SUPPORT_BIGINT_H
