//===- support/BigInt.h - Arbitrary-precision signed integers --*- C++ -*-===//
//
// Part of the cai project: a reproduction of "Combining Abstract
// Interpreters" (Gulwani & Tiwari, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arbitrary-precision signed integer arithmetic.
///
/// The Karr domain (affine hulls), Fourier-Motzkin elimination and the exact
/// simplex all produce coefficient blow-up that genuinely overflows 64-bit
/// integers, so every numeric domain in this library is backed by BigInt
/// (through Rational).
///
/// Representation: three tiers, eagerly demoted so each value has exactly
/// one canonical form (operator== and hash() rely on that):
///
///   I64  -- the value fits int64_t.  The four arithmetic operators run
///           this case inline as a single overflow-checked machine
///           operation; it is the inner loop of every rational
///           Gauss-Jordan elimination.
///   I128 -- the value fits a signed 128-bit integer but not int64_t.
///           Still stored inline (no heap); arithmetic runs out-of-line on
///           __int128.  This tier absorbs the coefficient growth of simplex
///           pivoting and Fourier-Motzkin combination, which overflows
///           int64 routinely but exceeds 2^127 only in pathological runs.
///   Big  -- sign-magnitude base-2^32 limbs, least-significant first, heap
///           allocated.  Entered only past the 128-bit boundary.
///
/// The object is 24 bytes: two 64-bit words hold either the two's-complement
/// 128-bit inline value (Lo/Hi halves) or, in the Big tier, the limb-array
/// pointer and limb count.  Keeping the footprint below the old
/// vector-embedding layout matters because simplex pivoting and RREF stream
/// rows of Rationals (two BigInts each) through tight loops; the fewer
/// bytes per coefficient, the more of a tableau row stays in cache.
///
/// Compiling with CAI_EXACT_SLOW_PATH defined (cmake -DCAI_EXACT_SLOW_PATH=ON)
/// moves the promotion boundary back to int64: the I128 tier is never
/// produced and everything past int64 lives in limbs, reproducing the
/// pre-tier behavior bit for bit.  CI builds both flavors and diffs the
/// analyzer output byte for byte, proving the inline 128-bit tier is a pure
/// optimization.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_SUPPORT_BIGINT_H
#define CAI_SUPPORT_BIGINT_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace cai {

/// An arbitrary-precision signed integer.
class BigInt {
public:
  /// Constructs zero.
  BigInt() = default;

  /// Constructs from a machine integer (I64 form; never allocates).
  BigInt(int64_t Value)
      : Lo(static_cast<uint64_t>(Value)), Hi(Value < 0 ? ~uint64_t(0) : 0) {}

  BigInt(const BigInt &Other)
      : Lo(Other.Lo), Hi(Other.Hi), Rep(Other.Rep), Negative(Other.Negative) {
    if (Rep == RepKind::Big)
      adoptLimbCopy(Other);
  }
  BigInt(BigInt &&Other) noexcept
      : Lo(Other.Lo), Hi(Other.Hi), Rep(Other.Rep), Negative(Other.Negative) {
    Other.resetToZero();
  }
  BigInt &operator=(const BigInt &Other) {
    if (this == &Other)
      return *this;
    if (Rep == RepKind::Big)
      freeLimbs();
    Lo = Other.Lo;
    Hi = Other.Hi;
    Rep = Other.Rep;
    Negative = Other.Negative;
    if (Rep == RepKind::Big)
      adoptLimbCopy(Other);
    return *this;
  }
  BigInt &operator=(BigInt &&Other) noexcept {
    if (this == &Other)
      return *this;
    if (Rep == RepKind::Big)
      freeLimbs();
    Lo = Other.Lo;
    Hi = Other.Hi;
    Rep = Other.Rep;
    Negative = Other.Negative;
    Other.resetToZero();
    return *this;
  }
  ~BigInt() {
    if (Rep == RepKind::Big)
      freeLimbs();
  }

  /// Parses a decimal string with an optional leading '-'.  Asserts on
  /// malformed input; use isValidDecimal to validate untrusted text first.
  static BigInt fromString(const std::string &Text);

  /// Returns true if \p Text is a well-formed decimal integer.
  static bool isValidDecimal(const std::string &Text);

  bool isZero() const { return Rep == RepKind::I64 && Lo == 0; }
  bool isNegative() const {
    return Rep == RepKind::Big ? Negative : static_cast<int64_t>(Hi) < 0;
  }
  bool isOne() const { return Rep == RepKind::I64 && Lo == 1; }

  /// Returns the value as int64_t.  Asserts if it does not fit.
  int64_t toInt64() const {
    assert(fitsInt64() && "value does not fit in int64_t");
    return small64();
  }

  /// True if the value fits in an int64_t.  (Wider values are demoted
  /// eagerly, so the wider tiers never hold an int64-representable value.)
  bool fitsInt64() const { return Rep == RepKind::I64; }

  // The four arithmetic operators run the I64-I64 case inline (a single
  // overflow-checked machine operation) and fall back to the out-of-line
  // continuation on a wider tier or on overflow.
  BigInt operator-() const {
    if (Rep == RepKind::I64 && small64() != INT64_MIN)
      return BigInt(-small64());
    return negSlow();
  }
  BigInt operator+(const BigInt &RHS) const {
    int64_t R;
    if (Rep == RepKind::I64 && RHS.Rep == RepKind::I64 &&
        !__builtin_add_overflow(small64(), RHS.small64(), &R))
      return BigInt(R);
    return addSlow(RHS);
  }
  BigInt operator-(const BigInt &RHS) const {
    int64_t R;
    if (Rep == RepKind::I64 && RHS.Rep == RepKind::I64 &&
        !__builtin_sub_overflow(small64(), RHS.small64(), &R))
      return BigInt(R);
    return subSlow(RHS);
  }
  BigInt operator*(const BigInt &RHS) const {
    int64_t R;
    if (Rep == RepKind::I64 && RHS.Rep == RepKind::I64 &&
        !__builtin_mul_overflow(small64(), RHS.small64(), &R))
      return BigInt(R);
    return mulSlow(RHS);
  }

  /// Truncated division (C semantics: rounds toward zero).  Asserts on
  /// division by zero.
  BigInt operator/(const BigInt &RHS) const {
    if (Rep == RepKind::I64 && RHS.Rep == RepKind::I64 &&
        !(small64() == INT64_MIN && RHS.small64() == -1)) {
      assert(RHS.small64() != 0 && "division by zero");
      return BigInt(small64() / RHS.small64());
    }
    return divSlow(RHS);
  }

  /// Remainder matching operator/ (truncated: same sign as the dividend).
  /// The I64-I64 case runs inline; INT64_MIN % -1 is the one pair that must
  /// detour (the hardware op traps even though the result is 0).
  BigInt operator%(const BigInt &RHS) const {
    if (Rep == RepKind::I64 && RHS.Rep == RepKind::I64 &&
        !(small64() == INT64_MIN && RHS.small64() == -1)) {
      assert(RHS.small64() != 0 && "division by zero");
      return BigInt(small64() % RHS.small64());
    }
    return remSlow(RHS);
  }

  BigInt &operator+=(const BigInt &RHS) { return *this = *this + RHS; }
  BigInt &operator-=(const BigInt &RHS) { return *this = *this - RHS; }
  BigInt &operator*=(const BigInt &RHS) { return *this = *this * RHS; }
  BigInt &operator/=(const BigInt &RHS) { return *this = *this / RHS; }

  bool operator==(const BigInt &RHS) const {
    if (Rep != RHS.Rep)
      return false; // Canonical forms: one tier per value.
    if (Rep != RepKind::Big)
      return Lo == RHS.Lo && Hi == RHS.Hi;
    return Negative == RHS.Negative && Hi == RHS.Hi &&
           std::memcmp(limbData(), RHS.limbData(),
                       limbCount() * sizeof(uint32_t)) == 0;
  }
  bool operator!=(const BigInt &RHS) const { return !(*this == RHS); }
  bool operator<(const BigInt &RHS) const {
    if (Rep == RepKind::I64 && RHS.Rep == RepKind::I64)
      return small64() < RHS.small64();
    return lessSlow(RHS);
  }
  bool operator<=(const BigInt &RHS) const { return !(RHS < *this); }
  bool operator>(const BigInt &RHS) const { return RHS < *this; }
  bool operator>=(const BigInt &RHS) const { return !(*this < RHS); }

  /// Returns -1, 0, or 1 according to the sign of the value.
  int sign() const {
    if (Rep == RepKind::Big)
      return Negative ? -1 : 1; // Big values are never zero.
    if (static_cast<int64_t>(Hi) < 0)
      return -1;
    return (Lo | Hi) ? 1 : 0;
  }

  /// Absolute value.
  BigInt abs() const;

  /// Greatest common divisor of the absolute values; gcd(0, x) == |x|.
  static BigInt gcd(const BigInt &A, const BigInt &B) {
    if (A.Rep == RepKind::I64 && B.Rep == RepKind::I64) {
      uint64_t X = A.smallMagnitude(), Y = B.smallMagnitude();
      while (Y) {
        uint64_t R = X % Y;
        X = Y;
        Y = R;
      }
      // X <= max(|A|, |B|) <= 2^63; only 2^63 itself needs a wider tier.
      if (X <= static_cast<uint64_t>(INT64_MAX))
        return BigInt(static_cast<int64_t>(X));
    }
    return gcdSlow(A, B);
  }

  /// Least common multiple of the absolute values; lcm(0, x) == 0.
  static BigInt lcm(const BigInt &A, const BigInt &B);

  /// Raises \p Base to the non-negative power \p Exp.
  static BigInt pow(const BigInt &Base, unsigned Exp);

  /// Decimal rendering with a leading '-' for negative values.
  std::string toString() const;

  /// Hash suitable for unordered containers.  Canonical demotion makes this
  /// representation-independent: equal values always share a tier.
  size_t hash() const;

  // Differential-testing oracle (tests/bigint_fuzz_test.cpp): each refXxx
  // recomputes the operation through the heap-limb path regardless of the
  // operands' tier, finishing through the same canonicalization as the
  // fast paths.  The fuzzer asserts fast == ref for random op sequences,
  // which is what lets the I64/I128 tiers ship as provably pure
  // optimization.  Not for production use: every call allocates.
  static BigInt refAdd(const BigInt &A, const BigInt &B);
  static BigInt refSub(const BigInt &A, const BigInt &B);
  static BigInt refMul(const BigInt &A, const BigInt &B);
  static BigInt refDiv(const BigInt &A, const BigInt &B);
  static BigInt refRem(const BigInt &A, const BigInt &B);
  static BigInt refNeg(const BigInt &A);
  static BigInt refGcd(const BigInt &A, const BigInt &B);
  /// -1, 0, 1 as A <, ==, > B, computed via sign + magnitude compare.
  static int refCompare(const BigInt &A, const BigInt &B);

private:
  using Magnitude = std::vector<uint32_t>;

  /// Representation tier; see the file comment.
  enum class RepKind : uint8_t { I64, I128, Big };

  /// Largest magnitude the inline form may hold (one more on the negative
  /// side: INT64_MIN / INT128_MIN).  With CAI_EXACT_SLOW_PATH this is the
  /// int64 boundary, disabling the I128 tier entirely.
  static unsigned __int128 maxInlineMagnitude(bool Neg) {
#ifdef CAI_EXACT_SLOW_PATH
    return static_cast<unsigned __int128>(INT64_MAX) + (Neg ? 1 : 0);
#else
    return ((static_cast<unsigned __int128>(1) << 127) - 1) + (Neg ? 1 : 0);
#endif
  }

  /// The inline value, reassembled from its halves (valid when Rep != Big).
  __int128 small() const {
    assert(Rep != RepKind::Big && "small() needs an inline tier");
    return static_cast<__int128>((static_cast<unsigned __int128>(Hi) << 64) |
                                 Lo);
  }
  /// The inline value truncated to its low 64 bits (valid when Rep == I64,
  /// where the high half is pure sign extension).
  int64_t small64() const { return static_cast<int64_t>(Lo); }

  /// The limb array (valid when Rep == Big).
  uint32_t *limbData() const {
    assert(Rep == RepKind::Big && "limbData needs the big tier");
    return reinterpret_cast<uint32_t *>(static_cast<uintptr_t>(Lo));
  }
  size_t limbCount() const {
    assert(Rep == RepKind::Big && "limbCount needs the big tier");
    return static_cast<size_t>(Hi);
  }

  /// Installs a fresh copy of \p Other's limb array (both objects Big).
  void adoptLimbCopy(const BigInt &Other) {
    uint32_t *Copy = new uint32_t[static_cast<size_t>(Hi)];
    std::memcpy(Copy, Other.limbData(),
                static_cast<size_t>(Hi) * sizeof(uint32_t));
    Lo = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Copy));
  }
  void freeLimbs() { delete[] limbData(); }
  void resetToZero() {
    Lo = 0;
    Hi = 0;
    Rep = RepKind::I64;
    Negative = false;
  }
  /// Takes ownership of \p Limbs as the big form (trimmed, > inline range).
  static BigInt bigFromLimbs(bool Neg, const Magnitude &Limbs);

  /// Builds the canonical inline form; magnitude must be within
  /// maxInlineMagnitude(Neg).
  static BigInt inlineUnchecked(bool Neg, unsigned __int128 Mag);
  /// Builds the big form from a >128-bit-boundary magnitude.
  static BigInt promoteMag(bool Neg, unsigned __int128 Mag);
  /// Builds the canonical form from a 128-bit signed intermediate.
  static BigInt fromInt128(__int128 Value);
  /// Builds the canonical form from sign + 128-bit magnitude.
  static BigInt fromSignMag128(bool Neg, unsigned __int128 Mag);
  /// Builds the canonical form from sign + magnitude, demoting when small.
  static BigInt fromMagnitude(bool Negative, Magnitude Limbs);

  // Out-of-line continuations of the inline operators: wider-tier operands
  // or I64 results that overflowed.
  BigInt negSlow() const;
  BigInt addSlow(const BigInt &RHS) const;
  BigInt subSlow(const BigInt &RHS) const;
  BigInt mulSlow(const BigInt &RHS) const;
  BigInt divSlow(const BigInt &RHS) const;
  BigInt remSlow(const BigInt &RHS) const;
  bool lessSlow(const BigInt &RHS) const;
  static BigInt gcdSlow(const BigInt &A, const BigInt &B);

  /// Magnitude of the inline value truncated to 64 bits (valid only when
  /// Rep == I64).
  uint64_t smallMagnitude() const {
    assert(Rep == RepKind::I64 && "smallMagnitude needs the I64 tier");
    int64_t S = small64();
    return S < 0 ? ~static_cast<uint64_t>(S) + 1 : static_cast<uint64_t>(S);
  }
  /// Magnitude of the inline value (valid when Rep != Big).
  unsigned __int128 inlineMagnitude() const {
    __int128 S = small();
    return S < 0 ? ~static_cast<unsigned __int128>(S) + 1
                 : static_cast<unsigned __int128>(S);
  }
  /// Copies this value's magnitude into limb form.
  Magnitude magnitude() const;

  static int compareMagnitude(const Magnitude &A, const Magnitude &B);
  static Magnitude addMagnitude(const Magnitude &A, const Magnitude &B);
  /// Requires |A| >= |B|.
  static Magnitude subMagnitude(const Magnitude &A, const Magnitude &B);
  static Magnitude mulMagnitude(const Magnitude &A, const Magnitude &B);
  /// Knuth algorithm D; returns quotient magnitude and leaves the remainder
  /// magnitude in \p Rem.
  static Magnitude divMagnitude(const Magnitude &A, const Magnitude &B,
                                Magnitude &Rem);
  static void trim(Magnitude &Limbs);

  /// Inline tiers: the two's-complement 128-bit value, split into halves
  /// (Hi is sign extension in the I64 tier).  Big tier: Lo is the limb
  /// pointer, Hi the limb count.
  uint64_t Lo = 0;
  uint64_t Hi = 0;
  RepKind Rep = RepKind::I64;
  bool Negative = false; ///< Sign; meaningful only when Rep == Big.
};

} // namespace cai

#endif // CAI_SUPPORT_BIGINT_H
