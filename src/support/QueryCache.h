//===- support/QueryCache.h - Bounded memoization cache ---------*- C++ -*-===//
///
/// \file
/// A bounded map from query keys to previously computed results, used to
/// memoize lattice operations (join, meet, entailment, unsat, existential
/// quantification, Nelson-Oppen saturation) across fixpoint iterations.
/// Keys are stored in full and compared with operator== on lookup, so hash
/// collisions can never produce a wrong answer -- the fingerprint only
/// buys O(1) bucketing.
///
/// Eviction is epoch-based: when the cache reaches its capacity it is
/// flushed wholesale.  That is deliberately simpler than LRU -- the access
/// pattern of a fixpoint engine is strongly phase-local (the same handful
/// of states is queried until the node stabilizes, then never again), so a
/// periodic flush loses little and costs no per-hit bookkeeping.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_SUPPORT_QUERYCACHE_H
#define CAI_SUPPORT_QUERYCACHE_H

#include <cstddef>
#include <unordered_map>
#include <utility>

namespace cai {

/// Hit/miss counters of one cache, aggregated into LatticeStats.
struct QueryCacheCounters {
  unsigned long Hits = 0;
  unsigned long Misses = 0;
};

/// A bounded memoization cache.  Not thread-safe (one analysis runs on one
/// thread; sharding across threads gets a cache per shard).
template <typename Key, typename Value, typename Hasher = std::hash<Key>>
class QueryCache {
public:
  explicit QueryCache(size_t Capacity = 1 << 14) : Capacity(Capacity) {}

  /// Returns the cached value for \p K, or nullptr on a miss.  The pointer
  /// is invalidated by the next insert (which may flush), so callers copy
  /// or use the value before inserting anything.
  const Value *lookup(const Key &K) {
    auto It = Map.find(K);
    if (It == Map.end()) {
      ++Counters.Misses;
      return nullptr;
    }
    ++Counters.Hits;
    return &It->second;
  }

  /// Records \p V as the result for \p K.  Flushes first when full.
  void insert(const Key &K, Value V) {
    if (Map.size() >= Capacity) {
      Map.clear();
      ++Flushes;
    }
    Map.emplace(K, std::move(V));
  }

  void clear() { Map.clear(); }
  size_t size() const { return Map.size(); }
  unsigned long flushes() const { return Flushes; }
  const QueryCacheCounters &counters() const { return Counters; }

private:
  size_t Capacity;
  unsigned long Flushes = 0;
  QueryCacheCounters Counters;
  std::unordered_map<Key, Value, Hasher> Map;
};

} // namespace cai

#endif // CAI_SUPPORT_QUERYCACHE_H
