//===- support/Rational.cpp - Exact rational arithmetic ------------------===//

#include "support/Rational.h"

using namespace cai;

Rational::Rational(BigInt Numerator, BigInt Denominator)
    : Num(std::move(Numerator)), Den(std::move(Denominator)) {
  assert(!Den.isZero() && "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (Den.isNegative()) {
    Num = -Num;
    Den = -Den;
  }
  if (Num.isZero()) {
    Den = BigInt(1);
    return;
  }
  BigInt G = BigInt::gcd(Num, Den);
  if (!G.isOne()) {
    Num /= G;
    Den /= G;
  }
}

Rational Rational::operator-() const {
  Rational Result = *this;
  Result.Num = -Result.Num;
  return Result;
}

Rational Rational::operator+(const Rational &RHS) const {
  return Rational(Num * RHS.Den + RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator-(const Rational &RHS) const {
  return Rational(Num * RHS.Den - RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator*(const Rational &RHS) const {
  return Rational(Num * RHS.Num, Den * RHS.Den);
}

Rational Rational::operator/(const Rational &RHS) const {
  assert(!RHS.isZero() && "rational division by zero");
  return Rational(Num * RHS.Den, Den * RHS.Num);
}

bool Rational::operator<(const Rational &RHS) const {
  return Num * RHS.Den < RHS.Num * Den;
}

Rational Rational::inverse() const {
  assert(!isZero() && "inverse of zero");
  return Rational(Den, Num);
}

BigInt Rational::floor() const {
  if (Den.isOne())
    return Num;
  // The value is not an integer here (lowest terms), so truncated division
  // rounds up for negatives and down for positives.
  BigInt Q = Num / Den;
  if (Num.isNegative())
    Q = Q - BigInt(1);
  return Q;
}

BigInt Rational::ceil() const {
  if (Den.isOne())
    return Num;
  BigInt Q = Num / Den;
  if (!Num.isNegative())
    Q = Q + BigInt(1);
  return Q;
}

std::string Rational::toString() const {
  if (Den.isOne())
    return Num.toString();
  return Num.toString() + "/" + Den.toString();
}
