//===- support/Rational.cpp - Exact rational arithmetic ------------------===//

#include "support/Rational.h"

using namespace cai;

Rational::Rational(BigInt Numerator, BigInt Denominator)
    : Num(std::move(Numerator)), Den(std::move(Denominator)) {
  assert(!Den.isZero() && "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (Den.isNegative()) {
    Num = -Num;
    Den = -Den;
  }
  if (Num.isZero()) {
    Den = BigInt(1);
    return;
  }
  BigInt G = BigInt::gcd(Num, Den);
  if (!G.isOne()) {
    Num /= G;
    Den /= G;
  }
}

Rational Rational::operator-() const {
  Rational Result = *this;
  Result.Num = -Result.Num;
  return Result;
}

Rational Rational::addSlow(const Rational &RHS, bool Negate) const {
  // Knuth TAOCP 4.5.1: factor g = gcd(b, d) out of a/b +- c/d first; the
  // final reduction then only needs a gcd against g, and all intermediate
  // products are a factor g^2 smaller than the naive cross-multiplication.
  const BigInt &A = Num, &B = Den, &C = RHS.Num, &D = RHS.Den;
  BigInt G = BigInt::gcd(B, D);
  if (G.isOne()) {
    // Coprime denominators: the result is already in lowest terms.
    Rational Out;
    Out.Num = Negate ? A * D - C * B : A * D + C * B;
    if (Out.Num.isZero())
      return Out;
    Out.Den = B * D;
    return Out;
  }
  BigInt Bg = B / G, Dg = D / G;
  BigInt T = Negate ? A * Dg - C * Bg : A * Dg + C * Bg;
  if (T.isZero())
    return Rational();
  BigInt G2 = BigInt::gcd(T, G);
  Rational Out;
  if (G2.isOne()) {
    Out.Num = std::move(T);
    Out.Den = Bg * D;
  } else {
    Out.Num = T / G2;
    Out.Den = Bg * (D / G2);
  }
  return Out;
}

Rational Rational::mulSlow(const Rational &RHS) const {
  if (isZero() || RHS.isZero())
    return Rational();
  BigInt G1 = BigInt::gcd(Num, RHS.Den);
  BigInt G2 = BigInt::gcd(RHS.Num, Den);
  Rational Out;
  Out.Num = (G1.isOne() ? Num : Num / G1) * (G2.isOne() ? RHS.Num : RHS.Num / G2);
  Out.Den = (G2.isOne() ? Den : Den / G2) * (G1.isOne() ? RHS.Den : RHS.Den / G1);
  return Out;
}

Rational Rational::operator/(const Rational &RHS) const {
  assert(!RHS.isZero() && "rational division by zero");
  if (Den.isOne() && RHS.Den.isOne() && RHS.Num.isOne())
    return *this;
  return *this * Rational(RHS.Den, RHS.Num); // Ctor renormalizes the sign.
}

Rational Rational::inverse() const {
  assert(!isZero() && "inverse of zero");
  return Rational(Den, Num);
}

BigInt Rational::floor() const {
  if (Den.isOne())
    return Num;
  // The value is not an integer here (lowest terms), so truncated division
  // rounds up for negatives and down for positives.
  BigInt Q = Num / Den;
  if (Num.isNegative())
    Q = Q - BigInt(1);
  return Q;
}

BigInt Rational::ceil() const {
  if (Den.isOne())
    return Num;
  BigInt Q = Num / Den;
  if (!Num.isNegative())
    Q = Q + BigInt(1);
  return Q;
}

std::string Rational::toString() const {
  if (Den.isOne())
    return Num.toString();
  return Num.toString() + "/" + Den.toString();
}
