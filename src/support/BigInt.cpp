//===- support/BigInt.cpp - Arbitrary-precision signed integers ----------===//
///
/// \file
/// Small values (anything fitting int64_t) live inline; arithmetic on them
/// runs through __int128 and only promotes on overflow.  The big path is
/// schoolbook base-2^32 limb arithmetic with Knuth algorithm D division.
/// Every result is demoted back to the small form when it fits, keeping
/// the representation canonical (operator== relies on that).
///
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"

#include <algorithm>

using namespace cai;

static constexpr __int128 Int64Min = INT64_MIN;
static constexpr __int128 Int64Max = INT64_MAX;

BigInt BigInt::fromInt128(__int128 Value) {
  if (Value >= Int64Min && Value <= Int64Max)
    return BigInt(static_cast<int64_t>(Value));
  bool Neg = Value < 0;
  unsigned __int128 Mag =
      Neg ? ~static_cast<unsigned __int128>(Value) + 1
          : static_cast<unsigned __int128>(Value);
  Magnitude Limbs;
  while (Mag) {
    Limbs.push_back(static_cast<uint32_t>(Mag));
    Mag >>= 32;
  }
  return fromMagnitude(Neg, std::move(Limbs));
}

BigInt BigInt::fromMagnitude(bool Negative, Magnitude Limbs) {
  trim(Limbs);
  // Demote when the magnitude fits an int64.
  if (Limbs.size() <= 2) {
    uint64_t Mag = 0;
    if (!Limbs.empty())
      Mag = Limbs[0];
    if (Limbs.size() == 2)
      Mag |= static_cast<uint64_t>(Limbs[1]) << 32;
    if (Mag <= static_cast<uint64_t>(INT64_MAX))
      return BigInt(Negative ? -static_cast<int64_t>(Mag)
                             : static_cast<int64_t>(Mag));
    if (Negative && Mag == static_cast<uint64_t>(1) << 63)
      return BigInt(INT64_MIN);
  }
  BigInt Out;
  Out.IsBig = true;
  Out.Negative = Negative;
  Out.Limbs = std::move(Limbs);
  assert(!Out.Limbs.empty() && "big form must be non-zero");
  return Out;
}

BigInt::Magnitude BigInt::magnitude() const {
  if (IsBig)
    return Limbs;
  Magnitude Out;
  uint64_t Mag = smallMagnitude();
  if (Mag)
    Out.push_back(static_cast<uint32_t>(Mag));
  if (Mag >> 32)
    Out.push_back(static_cast<uint32_t>(Mag >> 32));
  return Out;
}

bool BigInt::isValidDecimal(const std::string &Text) {
  size_t Start = (!Text.empty() && Text[0] == '-') ? 1 : 0;
  if (Text.size() == Start)
    return false;
  for (size_t I = Start; I < Text.size(); ++I)
    if (Text[I] < '0' || Text[I] > '9')
      return false;
  return true;
}

BigInt BigInt::fromString(const std::string &Text) {
  assert(isValidDecimal(Text) && "malformed decimal integer");
  BigInt Result;
  size_t Start = Text[0] == '-' ? 1 : 0;
  BigInt Ten(10);
  for (size_t I = Start; I < Text.size(); ++I)
    Result = Result * Ten + BigInt(Text[I] - '0');
  if (Text[0] == '-')
    Result = -Result;
  return Result;
}

void BigInt::trim(Magnitude &Limbs) {
  while (!Limbs.empty() && Limbs.back() == 0)
    Limbs.pop_back();
}

int BigInt::compareMagnitude(const Magnitude &A, const Magnitude &B) {
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  for (size_t I = A.size(); I-- > 0;)
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  return 0;
}

BigInt::Magnitude BigInt::addMagnitude(const Magnitude &A,
                                       const Magnitude &B) {
  Magnitude Result;
  Result.reserve(std::max(A.size(), B.size()) + 1);
  uint64_t Carry = 0;
  for (size_t I = 0, E = std::max(A.size(), B.size()); I < E; ++I) {
    uint64_t Sum = Carry;
    if (I < A.size())
      Sum += A[I];
    if (I < B.size())
      Sum += B[I];
    Result.push_back(static_cast<uint32_t>(Sum));
    Carry = Sum >> 32;
  }
  if (Carry)
    Result.push_back(static_cast<uint32_t>(Carry));
  return Result;
}

BigInt::Magnitude BigInt::subMagnitude(const Magnitude &A,
                                       const Magnitude &B) {
  assert(compareMagnitude(A, B) >= 0 && "subMagnitude requires |A| >= |B|");
  Magnitude Result;
  Result.reserve(A.size());
  int64_t Borrow = 0;
  for (size_t I = 0; I < A.size(); ++I) {
    int64_t Diff = static_cast<int64_t>(A[I]) - Borrow -
                   (I < B.size() ? static_cast<int64_t>(B[I]) : 0);
    Borrow = 0;
    if (Diff < 0) {
      Diff += static_cast<int64_t>(1) << 32;
      Borrow = 1;
    }
    Result.push_back(static_cast<uint32_t>(Diff));
  }
  assert(Borrow == 0 && "magnitude subtraction underflow");
  trim(Result);
  return Result;
}

BigInt::Magnitude BigInt::mulMagnitude(const Magnitude &A,
                                       const Magnitude &B) {
  if (A.empty() || B.empty())
    return {};
  Magnitude Result(A.size() + B.size(), 0);
  for (size_t I = 0; I < A.size(); ++I) {
    uint64_t Carry = 0;
    for (size_t J = 0; J < B.size(); ++J) {
      uint64_t Cur = static_cast<uint64_t>(A[I]) * B[J] + Result[I + J] + Carry;
      Result[I + J] = static_cast<uint32_t>(Cur);
      Carry = Cur >> 32;
    }
    size_t K = I + B.size();
    while (Carry) {
      uint64_t Cur = Result[K] + Carry;
      Result[K] = static_cast<uint32_t>(Cur);
      Carry = Cur >> 32;
      ++K;
    }
  }
  trim(Result);
  return Result;
}

BigInt::Magnitude BigInt::divMagnitude(const Magnitude &A, const Magnitude &B,
                                       Magnitude &Rem) {
  assert(!B.empty() && "division by zero");
  Rem.clear();
  if (compareMagnitude(A, B) < 0) {
    Rem = A;
    return {};
  }

  // Single-limb divisor fast path.
  if (B.size() == 1) {
    uint64_t Divisor = B[0];
    Magnitude Quot(A.size(), 0);
    uint64_t Carry = 0;
    for (size_t I = A.size(); I-- > 0;) {
      uint64_t Cur = (Carry << 32) | A[I];
      Quot[I] = static_cast<uint32_t>(Cur / Divisor);
      Carry = Cur % Divisor;
    }
    trim(Quot);
    if (Carry)
      Rem.push_back(static_cast<uint32_t>(Carry));
    return Quot;
  }

  // Knuth algorithm D.  Normalize so the divisor's top limb has its high bit
  // set; this bounds the quotient-digit estimate error to at most 2.
  int Shift = 0;
  for (uint32_t Top = B.back(); !(Top & 0x80000000u); Top <<= 1)
    ++Shift;

  auto shiftLeft = [](const Magnitude &V, int S) {
    if (S == 0)
      return V;
    Magnitude Out(V.size() + 1, 0);
    for (size_t I = 0; I < V.size(); ++I) {
      Out[I] |= V[I] << S;
      Out[I + 1] = static_cast<uint32_t>(static_cast<uint64_t>(V[I]) >>
                                         (32 - S));
    }
    trim(Out);
    return Out;
  };
  auto shiftRight = [](Magnitude V, int S) {
    if (S == 0)
      return V;
    for (size_t I = 0; I < V.size(); ++I) {
      V[I] >>= S;
      if (I + 1 < V.size())
        V[I] |= V[I + 1] << (32 - S);
    }
    trim(V);
    return V;
  };

  Magnitude U = shiftLeft(A, Shift);
  Magnitude V = shiftLeft(B, Shift);
  size_t N = V.size();
  size_t M = U.size() - N;
  U.resize(U.size() + 1, 0); // Room for the overflow limb.

  Magnitude Quot(M + 1, 0);
  for (size_t J = M + 1; J-- > 0;) {
    // Estimate the quotient digit from the top two limbs.
    uint64_t Numer = (static_cast<uint64_t>(U[J + N]) << 32) | U[J + N - 1];
    uint64_t QHat = Numer / V[N - 1];
    uint64_t RHat = Numer % V[N - 1];
    while (QHat >= (static_cast<uint64_t>(1) << 32) ||
           QHat * V[N - 2] > ((RHat << 32) | U[J + N - 2])) {
      --QHat;
      RHat += V[N - 1];
      if (RHat >= (static_cast<uint64_t>(1) << 32))
        break;
    }

    // Multiply-and-subtract; QHat may still be one too large.
    int64_t Borrow = 0;
    uint64_t Carry = 0;
    for (size_t I = 0; I < N; ++I) {
      uint64_t Product = QHat * V[I] + Carry;
      Carry = Product >> 32;
      int64_t Diff = static_cast<int64_t>(U[I + J]) -
                     static_cast<int64_t>(Product & 0xFFFFFFFFu) - Borrow;
      Borrow = 0;
      if (Diff < 0) {
        Diff += static_cast<int64_t>(1) << 32;
        Borrow = 1;
      }
      U[I + J] = static_cast<uint32_t>(Diff);
    }
    int64_t Diff = static_cast<int64_t>(U[J + N]) -
                   static_cast<int64_t>(Carry) - Borrow;
    if (Diff < 0) {
      // QHat was one too large: add the divisor back.
      Diff += static_cast<int64_t>(1) << 32;
      --QHat;
      uint64_t AddCarry = 0;
      for (size_t I = 0; I < N; ++I) {
        uint64_t Sum = static_cast<uint64_t>(U[I + J]) + V[I] + AddCarry;
        U[I + J] = static_cast<uint32_t>(Sum);
        AddCarry = Sum >> 32;
      }
      Diff += static_cast<int64_t>(AddCarry);
      Diff &= 0xFFFFFFFF;
    }
    U[J + N] = static_cast<uint32_t>(Diff);
    Quot[J] = static_cast<uint32_t>(QHat);
  }

  U.resize(N);
  trim(U);
  Rem = shiftRight(std::move(U), Shift);
  trim(Quot);
  return Quot;
}

BigInt BigInt::negSlow() const {
  if (!IsBig) // Only INT64_MIN reaches here from the inline operator.
    return fromInt128(-static_cast<__int128>(Small));
  // Through fromMagnitude, not a sign flip in place: negating +2^63
  // lands exactly on INT64_MIN, which must demote to the small form.
  return fromMagnitude(!Negative, Limbs);
}

BigInt BigInt::addSlow(const BigInt &RHS) const {
  if (!IsBig && !RHS.IsBig)
    return fromInt128(static_cast<__int128>(Small) + RHS.Small);
  Magnitude LM = magnitude(), RM = RHS.magnitude();
  bool LN = isNegative(), RN = RHS.isNegative();
  if (LN == RN)
    return fromMagnitude(LN, addMagnitude(LM, RM));
  if (compareMagnitude(LM, RM) >= 0)
    return fromMagnitude(LN, subMagnitude(LM, RM));
  return fromMagnitude(RN, subMagnitude(RM, LM));
}

BigInt BigInt::subSlow(const BigInt &RHS) const {
  if (!IsBig && !RHS.IsBig)
    return fromInt128(static_cast<__int128>(Small) - RHS.Small);
  return *this + (-RHS);
}

BigInt BigInt::mulSlow(const BigInt &RHS) const {
  if (!IsBig && !RHS.IsBig)
    return fromInt128(static_cast<__int128>(Small) * RHS.Small);
  return fromMagnitude(isNegative() != RHS.isNegative(),
                       mulMagnitude(magnitude(), RHS.magnitude()));
}

BigInt BigInt::divSlow(const BigInt &RHS) const {
  assert(!RHS.isZero() && "division by zero");
  if (!IsBig && !RHS.IsBig) // Only INT64_MIN / -1 reaches here inline.
    return fromInt128(-static_cast<__int128>(INT64_MIN));
  Magnitude Rem;
  Magnitude Quot = divMagnitude(magnitude(), RHS.magnitude(), Rem);
  return fromMagnitude(isNegative() != RHS.isNegative(), std::move(Quot));
}

BigInt BigInt::operator%(const BigInt &RHS) const {
  assert(!RHS.isZero() && "division by zero");
  if (!IsBig && !RHS.IsBig) {
    if (Small == INT64_MIN && RHS.Small == -1)
      return BigInt(0);
    return BigInt(Small % RHS.Small);
  }
  Magnitude Rem;
  divMagnitude(magnitude(), RHS.magnitude(), Rem);
  return fromMagnitude(isNegative(), std::move(Rem));
}

bool BigInt::lessSlow(const BigInt &RHS) const {
  bool LN = isNegative(), RN = RHS.isNegative();
  if (LN != RN)
    return LN;
  // Same sign; a big form always has larger magnitude than a small one.
  if (IsBig != RHS.IsBig)
    return RHS.IsBig != LN;
  int Cmp = compareMagnitude(Limbs, RHS.Limbs);
  return LN ? Cmp > 0 : Cmp < 0;
}

BigInt BigInt::abs() const {
  if (isNegative())
    return -*this;
  return *this;
}

BigInt BigInt::gcdSlow(const BigInt &A, const BigInt &B) {
  if (!A.IsBig && !B.IsBig) // Inline Euclid landed exactly on 2^63.
    return fromInt128(static_cast<__int128>(1) << 63);
  BigInt X = A.abs(), Y = B.abs();
  while (!Y.isZero()) {
    BigInt R = X % Y;
    X = std::move(Y);
    Y = std::move(R);
  }
  return X;
}

BigInt BigInt::lcm(const BigInt &A, const BigInt &B) {
  if (A.isZero() || B.isZero())
    return BigInt();
  return (A.abs() / gcd(A, B)) * B.abs();
}

BigInt BigInt::pow(const BigInt &Base, unsigned Exp) {
  BigInt Result(1), Factor = Base;
  while (Exp) {
    if (Exp & 1)
      Result *= Factor;
    Factor *= Factor;
    Exp >>= 1;
  }
  return Result;
}

std::string BigInt::toString() const {
  if (!IsBig)
    return std::to_string(Small);
  std::string Digits;
  Magnitude Work = Limbs;
  // Extract 9 decimal digits at a time using the single-limb fast path.
  const uint64_t Chunk = 1000000000;
  while (!Work.empty()) {
    uint64_t Carry = 0;
    for (size_t I = Work.size(); I-- > 0;) {
      uint64_t Cur = (Carry << 32) | Work[I];
      Work[I] = static_cast<uint32_t>(Cur / Chunk);
      Carry = Cur % Chunk;
    }
    trim(Work);
    for (int I = 0; I < 9; ++I) {
      Digits.push_back('0' + static_cast<char>(Carry % 10));
      Carry /= 10;
    }
  }
  while (Digits.size() > 1 && Digits.back() == '0')
    Digits.pop_back();
  if (Negative)
    Digits.push_back('-');
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

size_t BigInt::hash() const {
  if (!IsBig)
    return static_cast<size_t>(Small) * 1099511628211ull;
  size_t H = Negative ? 0x9e3779b97f4a7c15ull : 0;
  for (uint32_t Limb : Limbs)
    H = H * 1099511628211ull ^ Limb;
  return H;
}
