//===- support/BigInt.cpp - Arbitrary-precision signed integers ----------===//
///
/// \file
/// Three-tier arithmetic (see BigInt.h).  The inline tiers run on int64 /
/// __int128 machine operations and promote only on real overflow; the big
/// path is schoolbook base-2^32 limb arithmetic with Knuth algorithm D
/// division.  Every constructor-of-results funnels through inlineUnchecked
/// / promoteMag / fromMagnitude, which demote eagerly so each value has
/// exactly one representation (operator== and hash() rely on that).
///
/// Note on __int128 multiplication: we deliberately avoid
/// __builtin_mul_overflow at 128 bits (clang lowers it to a compiler-rt
/// call that is not always linked) and instead check overflow on the
/// unsigned magnitudes, where "both halves fit 64 bits" and a single
/// division cover all cases.
///
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"

#include <algorithm>

using namespace cai;

static constexpr __int128 Int64Min = INT64_MIN;
static constexpr __int128 Int64Max = INT64_MAX;

// The compact layout is the point of this file (see BigInt.h): a Rational
// is two of these, and simplex/RREF inner loops stream rows of Rationals.
static_assert(sizeof(BigInt) == 24, "BigInt layout grew past two words + tag");

BigInt BigInt::bigFromLimbs(bool Neg, const Magnitude &Limbs) {
  assert(!Limbs.empty() && Limbs.back() != 0 && "big form must be trimmed");
  BigInt Out;
  Out.Rep = RepKind::Big;
  Out.Negative = Neg;
  Out.Hi = Limbs.size();
  uint32_t *Data = new uint32_t[Limbs.size()];
  std::memcpy(Data, Limbs.data(), Limbs.size() * sizeof(uint32_t));
  Out.Lo = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Data));
  return Out;
}

BigInt BigInt::inlineUnchecked(bool Neg, unsigned __int128 Mag) {
  assert(Mag <= maxInlineMagnitude(Neg) && "magnitude too wide for inline");
  BigInt Out;
  // Two's complement computed in unsigned space so Mag == 2^127 (INT128_MIN)
  // does not negate a signed value that has no positive counterpart.
  unsigned __int128 V = Neg ? ~Mag + 1 : Mag;
  Out.Lo = static_cast<uint64_t>(V);
  Out.Hi = static_cast<uint64_t>(V >> 64);
  __int128 S = static_cast<__int128>(V);
  Out.Rep = (S >= Int64Min && S <= Int64Max) ? RepKind::I64 : RepKind::I128;
  return Out;
}

BigInt BigInt::promoteMag(bool Neg, unsigned __int128 Mag) {
  assert(Mag > maxInlineMagnitude(Neg) && "inline magnitude must not promote");
  Magnitude Limbs;
  while (Mag) {
    Limbs.push_back(static_cast<uint32_t>(Mag));
    Mag >>= 32;
  }
  return bigFromLimbs(Neg, Limbs);
}

BigInt BigInt::fromInt128(__int128 Value) {
  if (Value >= Int64Min && Value <= Int64Max)
    return BigInt(static_cast<int64_t>(Value));
  bool Neg = Value < 0;
  unsigned __int128 Mag = Neg ? ~static_cast<unsigned __int128>(Value) + 1
                              : static_cast<unsigned __int128>(Value);
  return fromSignMag128(Neg, Mag);
}

BigInt BigInt::fromSignMag128(bool Neg, unsigned __int128 Mag) {
  if (Mag <= maxInlineMagnitude(Neg))
    return inlineUnchecked(Neg, Mag);
  return promoteMag(Neg, Mag);
}

BigInt BigInt::fromMagnitude(bool Negative, Magnitude Limbs) {
  trim(Limbs);
  // Demote when the magnitude fits the inline form (four limbs make 128
  // bits; the negative side admits one more value, INT128_MIN).
  if (Limbs.size() <= 4) {
    unsigned __int128 Mag = 0;
    for (size_t I = Limbs.size(); I-- > 0;)
      Mag = (Mag << 32) | Limbs[I];
    if (Mag <= maxInlineMagnitude(Negative))
      return inlineUnchecked(Negative, Mag);
  }
  return bigFromLimbs(Negative, Limbs);
}

BigInt::Magnitude BigInt::magnitude() const {
  if (Rep == RepKind::Big)
    return Magnitude(limbData(), limbData() + limbCount());
  Magnitude Out;
  unsigned __int128 Mag = inlineMagnitude();
  while (Mag) {
    Out.push_back(static_cast<uint32_t>(Mag));
    Mag >>= 32;
  }
  return Out;
}

bool BigInt::isValidDecimal(const std::string &Text) {
  size_t Start = (!Text.empty() && Text[0] == '-') ? 1 : 0;
  if (Text.size() == Start)
    return false;
  for (size_t I = Start; I < Text.size(); ++I)
    if (Text[I] < '0' || Text[I] > '9')
      return false;
  return true;
}

BigInt BigInt::fromString(const std::string &Text) {
  assert(isValidDecimal(Text) && "malformed decimal integer");
  BigInt Result;
  size_t Start = Text[0] == '-' ? 1 : 0;
  BigInt Ten(10);
  for (size_t I = Start; I < Text.size(); ++I)
    Result = Result * Ten + BigInt(Text[I] - '0');
  if (Text[0] == '-')
    Result = -Result;
  return Result;
}

void BigInt::trim(Magnitude &Limbs) {
  while (!Limbs.empty() && Limbs.back() == 0)
    Limbs.pop_back();
}

int BigInt::compareMagnitude(const Magnitude &A, const Magnitude &B) {
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  for (size_t I = A.size(); I-- > 0;)
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  return 0;
}

BigInt::Magnitude BigInt::addMagnitude(const Magnitude &A,
                                       const Magnitude &B) {
  Magnitude Result;
  Result.reserve(std::max(A.size(), B.size()) + 1);
  uint64_t Carry = 0;
  for (size_t I = 0, E = std::max(A.size(), B.size()); I < E; ++I) {
    uint64_t Sum = Carry;
    if (I < A.size())
      Sum += A[I];
    if (I < B.size())
      Sum += B[I];
    Result.push_back(static_cast<uint32_t>(Sum));
    Carry = Sum >> 32;
  }
  if (Carry)
    Result.push_back(static_cast<uint32_t>(Carry));
  return Result;
}

BigInt::Magnitude BigInt::subMagnitude(const Magnitude &A,
                                       const Magnitude &B) {
  assert(compareMagnitude(A, B) >= 0 && "subMagnitude requires |A| >= |B|");
  Magnitude Result;
  Result.reserve(A.size());
  int64_t Borrow = 0;
  for (size_t I = 0; I < A.size(); ++I) {
    int64_t Diff = static_cast<int64_t>(A[I]) - Borrow -
                   (I < B.size() ? static_cast<int64_t>(B[I]) : 0);
    Borrow = 0;
    if (Diff < 0) {
      Diff += static_cast<int64_t>(1) << 32;
      Borrow = 1;
    }
    Result.push_back(static_cast<uint32_t>(Diff));
  }
  assert(Borrow == 0 && "magnitude subtraction underflow");
  trim(Result);
  return Result;
}

BigInt::Magnitude BigInt::mulMagnitude(const Magnitude &A,
                                       const Magnitude &B) {
  if (A.empty() || B.empty())
    return {};
  Magnitude Result(A.size() + B.size(), 0);
  for (size_t I = 0; I < A.size(); ++I) {
    uint64_t Carry = 0;
    for (size_t J = 0; J < B.size(); ++J) {
      uint64_t Cur = static_cast<uint64_t>(A[I]) * B[J] + Result[I + J] + Carry;
      Result[I + J] = static_cast<uint32_t>(Cur);
      Carry = Cur >> 32;
    }
    size_t K = I + B.size();
    while (Carry) {
      uint64_t Cur = Result[K] + Carry;
      Result[K] = static_cast<uint32_t>(Cur);
      Carry = Cur >> 32;
      ++K;
    }
  }
  trim(Result);
  return Result;
}

BigInt::Magnitude BigInt::divMagnitude(const Magnitude &A, const Magnitude &B,
                                       Magnitude &Rem) {
  assert(!B.empty() && "division by zero");
  Rem.clear();
  if (compareMagnitude(A, B) < 0) {
    Rem = A;
    return {};
  }

  // Single-limb divisor fast path.
  if (B.size() == 1) {
    uint64_t Divisor = B[0];
    Magnitude Quot(A.size(), 0);
    uint64_t Carry = 0;
    for (size_t I = A.size(); I-- > 0;) {
      uint64_t Cur = (Carry << 32) | A[I];
      Quot[I] = static_cast<uint32_t>(Cur / Divisor);
      Carry = Cur % Divisor;
    }
    trim(Quot);
    if (Carry)
      Rem.push_back(static_cast<uint32_t>(Carry));
    return Quot;
  }

  // Knuth algorithm D.  Normalize so the divisor's top limb has its high bit
  // set; this bounds the quotient-digit estimate error to at most 2.
  int Shift = 0;
  for (uint32_t Top = B.back(); !(Top & 0x80000000u); Top <<= 1)
    ++Shift;

  auto shiftLeft = [](const Magnitude &V, int S) {
    if (S == 0)
      return V;
    Magnitude Out(V.size() + 1, 0);
    for (size_t I = 0; I < V.size(); ++I) {
      Out[I] |= V[I] << S;
      Out[I + 1] = static_cast<uint32_t>(static_cast<uint64_t>(V[I]) >>
                                         (32 - S));
    }
    trim(Out);
    return Out;
  };
  auto shiftRight = [](Magnitude V, int S) {
    if (S == 0)
      return V;
    for (size_t I = 0; I < V.size(); ++I) {
      V[I] >>= S;
      if (I + 1 < V.size())
        V[I] |= V[I + 1] << (32 - S);
    }
    trim(V);
    return V;
  };

  Magnitude U = shiftLeft(A, Shift);
  Magnitude V = shiftLeft(B, Shift);
  size_t N = V.size();
  size_t M = U.size() - N;
  U.resize(U.size() + 1, 0); // Room for the overflow limb.

  Magnitude Quot(M + 1, 0);
  for (size_t J = M + 1; J-- > 0;) {
    // Estimate the quotient digit from the top two limbs.
    uint64_t Numer = (static_cast<uint64_t>(U[J + N]) << 32) | U[J + N - 1];
    uint64_t QHat = Numer / V[N - 1];
    uint64_t RHat = Numer % V[N - 1];
    while (QHat >= (static_cast<uint64_t>(1) << 32) ||
           QHat * V[N - 2] > ((RHat << 32) | U[J + N - 2])) {
      --QHat;
      RHat += V[N - 1];
      if (RHat >= (static_cast<uint64_t>(1) << 32))
        break;
    }

    // Multiply-and-subtract; QHat may still be one too large.
    int64_t Borrow = 0;
    uint64_t Carry = 0;
    for (size_t I = 0; I < N; ++I) {
      uint64_t Product = QHat * V[I] + Carry;
      Carry = Product >> 32;
      int64_t Diff = static_cast<int64_t>(U[I + J]) -
                     static_cast<int64_t>(Product & 0xFFFFFFFFu) - Borrow;
      Borrow = 0;
      if (Diff < 0) {
        Diff += static_cast<int64_t>(1) << 32;
        Borrow = 1;
      }
      U[I + J] = static_cast<uint32_t>(Diff);
    }
    int64_t Diff = static_cast<int64_t>(U[J + N]) -
                   static_cast<int64_t>(Carry) - Borrow;
    if (Diff < 0) {
      // QHat was one too large: add the divisor back.
      Diff += static_cast<int64_t>(1) << 32;
      --QHat;
      uint64_t AddCarry = 0;
      for (size_t I = 0; I < N; ++I) {
        uint64_t Sum = static_cast<uint64_t>(U[I + J]) + V[I] + AddCarry;
        U[I + J] = static_cast<uint32_t>(Sum);
        AddCarry = Sum >> 32;
      }
      Diff += static_cast<int64_t>(AddCarry);
      Diff &= 0xFFFFFFFF;
    }
    U[J + N] = static_cast<uint32_t>(Diff);
    Quot[J] = static_cast<uint32_t>(QHat);
  }

  U.resize(N);
  trim(U);
  Rem = shiftRight(std::move(U), Shift);
  trim(Quot);
  return Quot;
}

BigInt BigInt::negSlow() const {
  // Reached for INT64_MIN (inline negation would overflow) and any wider
  // tier.  Sign-magnitude makes all the edge cases fall out: -INT64_MIN is
  // +2^63 (I128 tier), -INT128_MIN is +2^127 (promotes to limbs).
  if (Rep != RepKind::Big)
    return fromSignMag128(small() > 0, inlineMagnitude());
  // Through fromMagnitude, not a sign flip in place: negating -2^127 must
  // demote... no -- negating +2^127+k stays big, but negating the big form
  // of -(2^127) lands exactly on INT128_MIN, which must demote inline.
  return fromMagnitude(!Negative, magnitude());
}

BigInt BigInt::addSlow(const BigInt &RHS) const {
  if (Rep != RepKind::Big && RHS.Rep != RepKind::Big) {
    __int128 R;
    if (!__builtin_add_overflow(small(), RHS.small(), &R))
      return fromInt128(R);
    // 129-bit carry-out: both operands were near +-2^127 with equal signs.
    // inlineMagnitude still holds each side exactly, and equal-sign
    // magnitudes add without cancellation, so route through sign+magnitude
    // with a manual uint128 carry into a 5th limb... the limb path below
    // already does exactly that; fall through.
  }
  Magnitude LM = magnitude(), RM = RHS.magnitude();
  bool LN = isNegative(), RN = RHS.isNegative();
  if (LN == RN)
    return fromMagnitude(LN, addMagnitude(LM, RM));
  if (compareMagnitude(LM, RM) >= 0)
    return fromMagnitude(LN, subMagnitude(LM, RM));
  return fromMagnitude(RN, subMagnitude(RM, LM));
}

BigInt BigInt::subSlow(const BigInt &RHS) const {
  if (Rep != RepKind::Big && RHS.Rep != RepKind::Big) {
    __int128 R;
    if (!__builtin_sub_overflow(small(), RHS.small(), &R))
      return fromInt128(R);
  }
  // Negation canonicalizes the sign of zero, so this is safe for every
  // remaining case (and the rare 129-bit one above).
  return *this + (-RHS);
}

BigInt BigInt::mulSlow(const BigInt &RHS) const {
  if (Rep != RepKind::Big && RHS.Rep != RepKind::Big) {
    unsigned __int128 A = inlineMagnitude(), B = RHS.inlineMagnitude();
    bool Neg = (small() < 0) != (RHS.small() < 0);
    if (A == 0 || B == 0)
      return BigInt();
    // Unsigned-magnitude overflow check; see the file comment for why this
    // is not __builtin_mul_overflow.  When both magnitudes fit 64 bits the
    // product fits 128 exactly; otherwise one division decides.
    if (((A | B) >> 64) == 0 ||
        B <= ~static_cast<unsigned __int128>(0) / A) {
      unsigned __int128 Mag = A * B;
      if (Mag <= maxInlineMagnitude(Neg))
        return inlineUnchecked(Neg, Mag);
      return promoteMag(Neg, Mag);
    }
  }
  return fromMagnitude(isNegative() != RHS.isNegative(),
                       mulMagnitude(magnitude(), RHS.magnitude()));
}

BigInt BigInt::divSlow(const BigInt &RHS) const {
  assert(!RHS.isZero() && "division by zero");
  if (Rep != RepKind::Big && RHS.Rep != RepKind::Big) {
    // INT128_MIN / -1 is the one quotient a signed 128-bit divide cannot
    // represent (it is +2^127); everything else, including the inline
    // INT64_MIN / -1 detour, divides exactly in 128 bits.
    constexpr __int128 Int128Min = static_cast<__int128>(
        ~(static_cast<unsigned __int128>(1) << 127) + 1);
    __int128 L = small(), R = RHS.small();
    if (L == Int128Min && R == -1)
      return fromSignMag128(false, static_cast<unsigned __int128>(1) << 127);
    return fromInt128(L / R);
  }
  Magnitude Rem;
  Magnitude Quot = divMagnitude(magnitude(), RHS.magnitude(), Rem);
  return fromMagnitude(isNegative() != RHS.isNegative(), std::move(Quot));
}

BigInt BigInt::remSlow(const BigInt &RHS) const {
  assert(!RHS.isZero() && "division by zero");
  if (Rep != RepKind::Big && RHS.Rep != RepKind::Big) {
    // Truncated semantics: the remainder takes the dividend's sign.  The
    // INT64_MIN % -1 inline detour and INT128_MIN % -1 both yield 0, which
    // the hardware op would trap on; guard the latter (the former divides
    // fine at 128 bits).
    constexpr __int128 Int128Min = static_cast<__int128>(
        ~(static_cast<unsigned __int128>(1) << 127) + 1);
    __int128 L = small(), R = RHS.small();
    if (L == Int128Min && R == -1)
      return BigInt(0);
    return fromInt128(L % R);
  }
  Magnitude Rem;
  divMagnitude(magnitude(), RHS.magnitude(), Rem);
  return fromMagnitude(isNegative(), std::move(Rem));
}

bool BigInt::lessSlow(const BigInt &RHS) const {
  bool LN = isNegative(), RN = RHS.isNegative();
  if (LN != RN)
    return LN;
  if (Rep != RepKind::Big && RHS.Rep != RepKind::Big)
    return small() < RHS.small();
  // Same sign; a big form always has larger magnitude than an inline one.
  if ((Rep == RepKind::Big) != (RHS.Rep == RepKind::Big))
    return (RHS.Rep == RepKind::Big) != LN;
  int Cmp = compareMagnitude(magnitude(), RHS.magnitude());
  return LN ? Cmp > 0 : Cmp < 0;
}

BigInt BigInt::abs() const {
  if (isNegative())
    return -*this;
  return *this;
}

BigInt BigInt::gcdSlow(const BigInt &A, const BigInt &B) {
  if (A.Rep == RepKind::I64 && B.Rep == RepKind::I64)
    // The inline uint64 Euclid already ran and landed exactly on 2^63.
    return fromSignMag128(false, static_cast<unsigned __int128>(1) << 63);
  if (A.Rep != RepKind::Big && B.Rep != RepKind::Big) {
    // uint128 Euclid for the middle tier.
    unsigned __int128 X = A.inlineMagnitude(), Y = B.inlineMagnitude();
    while (Y) {
      unsigned __int128 R = X % Y;
      X = Y;
      Y = R;
    }
    return fromSignMag128(false, X);
  }
  BigInt X = A.abs(), Y = B.abs();
  while (!Y.isZero()) {
    BigInt R = X % Y;
    X = std::move(Y);
    Y = std::move(R);
  }
  return X;
}

BigInt BigInt::lcm(const BigInt &A, const BigInt &B) {
  if (A.isZero() || B.isZero())
    return BigInt();
  return (A.abs() / gcd(A, B)) * B.abs();
}

BigInt BigInt::pow(const BigInt &Base, unsigned Exp) {
  BigInt Result(1), Factor = Base;
  while (Exp) {
    if (Exp & 1)
      Result *= Factor;
    Factor *= Factor;
    Exp >>= 1;
  }
  return Result;
}

std::string BigInt::toString() const {
  if (Rep == RepKind::I64)
    return std::to_string(small64());
  std::string Digits;
  Magnitude Work = magnitude();
  // Extract 9 decimal digits at a time using the single-limb fast path.
  const uint64_t Chunk = 1000000000;
  while (!Work.empty()) {
    uint64_t Carry = 0;
    for (size_t I = Work.size(); I-- > 0;) {
      uint64_t Cur = (Carry << 32) | Work[I];
      Work[I] = static_cast<uint32_t>(Cur / Chunk);
      Carry = Cur % Chunk;
    }
    trim(Work);
    for (int I = 0; I < 9; ++I) {
      Digits.push_back('0' + static_cast<char>(Carry % 10));
      Carry /= 10;
    }
  }
  while (Digits.size() > 1 && Digits.back() == '0')
    Digits.pop_back();
  if (isNegative())
    Digits.push_back('-');
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

size_t BigInt::hash() const {
  // Eager demotion means equal values share a tier, so per-tier formulas
  // are safe.  The I64 formula is unchanged from the single-tier days.
  if (Rep == RepKind::I64)
    return static_cast<size_t>(small64()) * 1099511628211ull;
  if (Rep == RepKind::I128) {
    size_t H = static_cast<size_t>(Lo) * 1099511628211ull;
    return (H ^ static_cast<size_t>(Hi)) * 1099511628211ull;
  }
  size_t H = Negative ? 0x9e3779b97f4a7c15ull : 0;
  for (size_t I = 0, E = limbCount(); I < E; ++I)
    H = H * 1099511628211ull ^ limbData()[I];
  return H;
}

//===----------------------------------------------------------------------===//
// Differential-testing oracle: limb-path recomputation of every operation.
// These ignore the operands' tier entirely -- magnitude() flattens to limbs,
// the schoolbook kernels do the work, and fromMagnitude canonicalizes -- so
// a fast-tier bug cannot hide in its own reference.
//===----------------------------------------------------------------------===//

BigInt BigInt::refNeg(const BigInt &A) {
  return fromMagnitude(!A.isNegative(), A.magnitude());
}

BigInt BigInt::refAdd(const BigInt &A, const BigInt &B) {
  Magnitude LM = A.magnitude(), RM = B.magnitude();
  bool LN = A.isNegative(), RN = B.isNegative();
  if (LN == RN)
    return fromMagnitude(LN, addMagnitude(LM, RM));
  if (compareMagnitude(LM, RM) >= 0)
    return fromMagnitude(LN, subMagnitude(LM, RM));
  return fromMagnitude(RN, subMagnitude(RM, LM));
}

BigInt BigInt::refSub(const BigInt &A, const BigInt &B) {
  return refAdd(A, refNeg(B));
}

BigInt BigInt::refMul(const BigInt &A, const BigInt &B) {
  return fromMagnitude(A.isNegative() != B.isNegative(),
                       mulMagnitude(A.magnitude(), B.magnitude()));
}

BigInt BigInt::refDiv(const BigInt &A, const BigInt &B) {
  assert(!B.isZero() && "division by zero");
  Magnitude Rem;
  Magnitude Quot = divMagnitude(A.magnitude(), B.magnitude(), Rem);
  return fromMagnitude(A.isNegative() != B.isNegative(), std::move(Quot));
}

BigInt BigInt::refRem(const BigInt &A, const BigInt &B) {
  assert(!B.isZero() && "division by zero");
  Magnitude Rem;
  divMagnitude(A.magnitude(), B.magnitude(), Rem);
  return fromMagnitude(A.isNegative(), std::move(Rem));
}

BigInt BigInt::refGcd(const BigInt &A, const BigInt &B) {
  Magnitude X = A.magnitude(), Y = B.magnitude();
  while (!Y.empty()) {
    Magnitude R;
    divMagnitude(X, Y, R);
    X = std::move(Y);
    Y = std::move(R);
  }
  return fromMagnitude(false, std::move(X));
}

int BigInt::refCompare(const BigInt &A, const BigInt &B) {
  bool LN = A.isNegative(), RN = B.isNegative();
  if (LN != RN)
    return LN ? -1 : 1;
  int Cmp = compareMagnitude(A.magnitude(), B.magnitude());
  return LN ? -Cmp : Cmp;
}
