//===- support/GF2.h - The two-element field --------------------*- C++ -*-===//
///
/// \file
/// GF(2), the field with two elements.  The parity abstract domain of the
/// paper's Section 2 ("theory of parity") is an affine-congruence system
/// modulo 2, which is exactly an affine system over GF(2); this type lets the
/// generic linalg::AffineSystem machinery be reused verbatim for it.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_SUPPORT_GF2_H
#define CAI_SUPPORT_GF2_H

#include <cassert>
#include <cstdint>
#include <string>

namespace cai {

/// An element of GF(2).  Models the Field concept used by linalg::Matrix.
class GF2 {
public:
  /// Constructs zero.
  GF2() = default;
  explicit GF2(bool Bit) : Bit(Bit) {}

  /// Reduces an integer modulo 2 (sign-insensitive).
  static GF2 fromInt(int64_t Value) { return GF2((Value % 2) != 0); }

  static GF2 one() { return GF2(true); }

  bool isZero() const { return !Bit; }
  bool isOne() const { return Bit; }
  bool value() const { return Bit; }

  GF2 operator-() const { return *this; }
  GF2 operator+(GF2 RHS) const { return GF2(Bit != RHS.Bit); }
  GF2 operator-(GF2 RHS) const { return *this + RHS; }
  GF2 operator*(GF2 RHS) const { return GF2(Bit && RHS.Bit); }
  GF2 operator/(GF2 RHS) const {
    assert(RHS.Bit && "GF2 division by zero");
    return *this;
  }

  GF2 &operator+=(GF2 RHS) { return *this = *this + RHS; }
  GF2 &operator-=(GF2 RHS) { return *this = *this - RHS; }
  GF2 &operator*=(GF2 RHS) { return *this = *this * RHS; }
  GF2 &operator/=(GF2 RHS) { return *this = *this / RHS; }

  bool operator==(GF2 RHS) const { return Bit == RHS.Bit; }
  bool operator!=(GF2 RHS) const { return Bit != RHS.Bit; }

  GF2 inverse() const {
    assert(Bit && "inverse of zero in GF2");
    return *this;
  }

  std::string toString() const { return Bit ? "1" : "0"; }

private:
  bool Bit = false;
};

} // namespace cai

#endif // CAI_SUPPORT_GF2_H
