//===- support/SmallVec.h - Inline-capacity small vector -------*- C++ -*-===//
//
// Part of the cai project: a reproduction of "Combining Abstract
// Interpreters" (Gulwani & Tiwari, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A contiguous dynamic array with N elements of inline storage, in the
/// LLVM SmallVector mold: the first N elements live inside the object and
/// only growth past N touches the heap.
///
/// The hot containers of this library are rows -- simplex tableau rows,
/// Karr/AffineSystem RREF rows, Fourier-Motzkin constraint rows -- and
/// conjunction atom lists, all of which are built, combined and destroyed
/// in inner fixpoint loops and are almost always short (a handful of
/// variables).  With std::vector each of those is a malloc/free pair;
/// with SmallVec the common case is pointer bumps in already-hot stack or
/// owner memory.
///
/// Deliberate deviations from std::vector:
///   - An *implicit* converting constructor from std::vector<T> (moving
///     the elements).  Rows flow in from APIs that still build
///     std::vectors (parser, tests, Matrix::nullspaceBasis); absorbing
///     them at the signature boundary keeps call sites unchanged.
///   - No shrink_to_fit, no allocator parameter, iterators are plain T*.
///
/// Capacity choices for the library's aliases are documented in DESIGN.md
/// ("Three-tier exact arithmetic and small-vector rows").
///
//===----------------------------------------------------------------------===//

#ifndef CAI_SUPPORT_SMALLVEC_H
#define CAI_SUPPORT_SMALLVEC_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace cai {

/// A dynamic array storing up to \p N elements inline before spilling to
/// the heap.
template <typename T, unsigned N> class SmallVec {
public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;
  using size_type = size_t;

  SmallVec() : Data(inlineData()), Count(0), Cap(N) {}

  explicit SmallVec(size_t Size) : SmallVec() { resize(Size); }

  SmallVec(size_t Size, const T &Value) : SmallVec() {
    reserve(Size);
    std::uninitialized_fill_n(Data, Size, Value);
    Count = Size;
  }

  template <typename It,
            typename = typename std::iterator_traits<It>::iterator_category>
  SmallVec(It First, It Last) : SmallVec() {
    assign(First, Last);
  }

  SmallVec(std::initializer_list<T> Init) : SmallVec() {
    assign(Init.begin(), Init.end());
  }

  /// Implicit on purpose; see the file comment.
  SmallVec(std::vector<T> Other) : SmallVec() {
    reserve(Other.size());
    std::uninitialized_move(Other.begin(), Other.end(), Data);
    Count = Other.size();
  }

  SmallVec(const SmallVec &Other) : SmallVec() {
    reserve(Other.Count);
    std::uninitialized_copy(Other.begin(), Other.end(), Data);
    Count = Other.Count;
  }

  SmallVec(SmallVec &&Other) noexcept : SmallVec() { takeFrom(Other); }

  SmallVec &operator=(const SmallVec &Other) {
    if (this == &Other)
      return *this;
    clear();
    reserve(Other.Count);
    std::uninitialized_copy(Other.begin(), Other.end(), Data);
    Count = Other.Count;
    return *this;
  }

  SmallVec &operator=(SmallVec &&Other) noexcept {
    if (this == &Other)
      return *this;
    clear();
    if (!isInline()) {
      deallocate(Data);
      Data = inlineData();
      Cap = N;
    }
    takeFrom(Other);
    return *this;
  }

  ~SmallVec() {
    clear();
    if (!isInline())
      deallocate(Data);
  }

  iterator begin() { return Data; }
  iterator end() { return Data + Count; }
  const_iterator begin() const { return Data; }
  const_iterator end() const { return Data + Count; }
  const_iterator cbegin() const { return Data; }
  const_iterator cend() const { return Data + Count; }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  size_t capacity() const { return Cap; }
  /// True while the elements still live in the inline buffer.
  bool isInline() const { return Data == inlineData(); }

  T &operator[](size_t I) {
    assert(I < Count && "index out of range");
    return Data[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Count && "index out of range");
    return Data[I];
  }
  T &front() { return (*this)[0]; }
  const T &front() const { return (*this)[0]; }
  T &back() { return (*this)[Count - 1]; }
  const T &back() const { return (*this)[Count - 1]; }
  T *data() { return Data; }
  const T *data() const { return Data; }

  void push_back(const T &Value) { emplace_back(Value); }
  void push_back(T &&Value) { emplace_back(std::move(Value)); }

  template <typename... ArgTs> T &emplace_back(ArgTs &&...Args) {
    if (Count == Cap)
      grow(Cap * 2);
    ::new (static_cast<void *>(Data + Count)) T(std::forward<ArgTs>(Args)...);
    return Data[Count++];
  }

  void pop_back() {
    assert(Count > 0 && "pop_back on empty SmallVec");
    Data[--Count].~T();
  }

  void clear() {
    std::destroy(Data, Data + Count);
    Count = 0;
  }

  void reserve(size_t NewCap) {
    if (NewCap > Cap)
      grow(NewCap);
  }

  void resize(size_t NewSize) {
    if (NewSize < Count) {
      std::destroy(Data + NewSize, Data + Count);
    } else {
      reserve(NewSize);
      std::uninitialized_value_construct(Data + Count, Data + NewSize);
    }
    Count = NewSize;
  }

  void resize(size_t NewSize, const T &Value) {
    if (NewSize < Count) {
      std::destroy(Data + NewSize, Data + Count);
    } else {
      reserve(NewSize);
      std::uninitialized_fill(Data + Count, Data + NewSize, Value);
    }
    Count = NewSize;
  }

  template <typename It,
            typename = typename std::iterator_traits<It>::iterator_category>
  void assign(It First, It Last) {
    clear();
    for (; First != Last; ++First)
      emplace_back(*First);
  }

  void assign(size_t Size, const T &Value) {
    clear();
    reserve(Size);
    std::uninitialized_fill_n(Data, Size, Value);
    Count = Size;
  }

  iterator insert(const_iterator Pos, const T &Value) {
    return emplace(Pos, Value);
  }
  iterator insert(const_iterator Pos, T &&Value) {
    return emplace(Pos, std::move(Value));
  }

  template <typename... ArgTs>
  iterator emplace(const_iterator Pos, ArgTs &&...Args) {
    size_t Index = Pos - Data;
    assert(Index <= Count && "insert position out of range");
    emplace_back(std::forward<ArgTs>(Args)...); // May reallocate.
    std::rotate(Data + Index, Data + Count - 1, Data + Count);
    return Data + Index;
  }

  iterator erase(const_iterator Pos) {
    size_t Index = Pos - Data;
    assert(Index < Count && "erase position out of range");
    std::move(Data + Index + 1, Data + Count, Data + Index);
    pop_back();
    return Data + Index;
  }

  iterator erase(const_iterator First, const_iterator Last) {
    size_t Index = First - Data;
    size_t Len = Last - First;
    assert(Index + Len <= Count && "erase range out of range");
    std::move(Data + Index + Len, Data + Count, Data + Index);
    std::destroy(Data + Count - Len, Data + Count);
    Count -= Len;
    return Data + Index;
  }

  bool operator==(const SmallVec &RHS) const {
    return Count == RHS.Count && std::equal(begin(), end(), RHS.begin());
  }
  bool operator!=(const SmallVec &RHS) const { return !(*this == RHS); }
  bool operator<(const SmallVec &RHS) const {
    return std::lexicographical_compare(begin(), end(), RHS.begin(),
                                        RHS.end());
  }

private:
  T *inlineData() {
    return reinterpret_cast<T *>(InlineStorage);
  }
  const T *inlineData() const {
    return reinterpret_cast<const T *>(InlineStorage);
  }

  static T *allocate(size_t Cap) {
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__)
      return static_cast<T *>(::operator new(Cap * sizeof(T),
                                             std::align_val_t(alignof(T))));
    else
      return static_cast<T *>(::operator new(Cap * sizeof(T)));
  }
  static void deallocate(T *Ptr) {
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__)
      ::operator delete(Ptr, std::align_val_t(alignof(T)));
    else
      ::operator delete(Ptr);
  }

  void grow(size_t NewCap) {
    NewCap = std::max(NewCap, Cap * 2);
    T *NewData = allocate(NewCap);
    std::uninitialized_move(Data, Data + Count, NewData);
    std::destroy(Data, Data + Count);
    if (!isInline())
      deallocate(Data);
    Data = NewData;
    Cap = NewCap;
  }

  /// Steals Other's heap buffer, or moves its inline elements; leaves
  /// Other empty either way.  Requires *this to be empty and inline.
  void takeFrom(SmallVec &Other) {
    assert(Count == 0 && isInline() && "takeFrom needs a fresh target");
    if (Other.isInline()) {
      std::uninitialized_move(Other.begin(), Other.end(), Data);
      Count = Other.Count;
      Other.clear();
    } else {
      Data = Other.Data;
      Count = Other.Count;
      Cap = Other.Cap;
      Other.Data = Other.inlineData();
      Other.Count = 0;
      Other.Cap = N;
    }
  }

  T *Data;
  size_t Count;
  size_t Cap;
  alignas(T) unsigned char InlineStorage[N * sizeof(T)];
};

} // namespace cai

#endif // CAI_SUPPORT_SMALLVEC_H
