//===- support/Rational.h - Exact rational arithmetic ----------*- C++ -*-===//
///
/// \file
/// Exact rationals over BigInt, always kept in lowest terms with a positive
/// denominator.  This is the coefficient field for the Karr affine domain,
/// Fourier-Motzkin elimination and the exact simplex.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_SUPPORT_RATIONAL_H
#define CAI_SUPPORT_RATIONAL_H

#include "support/BigInt.h"

#include <string>

namespace cai {

/// An exact rational number.
///
/// Also models the Field concept used by linalg::Matrix: default constructor
/// is zero, and it provides +, -, *, /, ==, isZero and one().
class Rational {
public:
  /// Constructs zero.
  Rational() : Num(0), Den(1) {}

  Rational(int64_t Value) : Num(Value), Den(1) {}
  Rational(BigInt Numerator) : Num(std::move(Numerator)), Den(1) {}

  /// Constructs Numerator/Denominator and normalizes.  Asserts on a zero
  /// denominator.
  Rational(BigInt Numerator, BigInt Denominator);

  static Rational one() { return Rational(1); }

  const BigInt &numerator() const { return Num; }
  const BigInt &denominator() const { return Den; }

  bool isZero() const { return Num.isZero(); }
  bool isOne() const { return Num.isOne() && Den.isOne(); }
  bool isInteger() const { return Den.isOne(); }
  int sign() const { return Num.sign(); }

  Rational operator-() const;
  // Integer-integer cases (both denominators 1 -- the common case in the
  // Gauss-Jordan inner loops) run inline without any gcd; everything else
  // takes the out-of-line path, which reduces with Knuth's cross-gcd
  // scheme so intermediate magnitudes stay small.
  Rational operator+(const Rational &RHS) const {
    if (Den.isOne() && RHS.Den.isOne())
      return Rational(Num + RHS.Num);
    return addSlow(RHS, /*Negate=*/false);
  }
  Rational operator-(const Rational &RHS) const {
    if (Den.isOne() && RHS.Den.isOne())
      return Rational(Num - RHS.Num);
    return addSlow(RHS, /*Negate=*/true);
  }
  Rational operator*(const Rational &RHS) const {
    if (Den.isOne() && RHS.Den.isOne())
      return Rational(Num * RHS.Num);
    return mulSlow(RHS);
  }
  /// Asserts on division by zero.
  Rational operator/(const Rational &RHS) const;

  Rational &operator+=(const Rational &RHS) { return *this = *this + RHS; }
  Rational &operator-=(const Rational &RHS) { return *this = *this - RHS; }
  Rational &operator*=(const Rational &RHS) { return *this = *this * RHS; }
  Rational &operator/=(const Rational &RHS) { return *this = *this / RHS; }

  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const {
    if (Den.isOne() && RHS.Den.isOne())
      return Num < RHS.Num;
    return Num * RHS.Den < RHS.Num * Den; // Denominators always positive.
  }
  bool operator<=(const Rational &RHS) const { return !(RHS < *this); }
  bool operator>(const Rational &RHS) const { return RHS < *this; }
  bool operator>=(const Rational &RHS) const { return !(*this < RHS); }

  Rational abs() const { return sign() < 0 ? -*this : *this; }

  /// Reciprocal; asserts on zero.
  Rational inverse() const;

  /// Largest integer <= value.
  BigInt floor() const;
  /// Smallest integer >= value.
  BigInt ceil() const;

  /// Renders as "n" or "n/d".
  std::string toString() const;

  size_t hash() const { return Num.hash() * 31 ^ Den.hash(); }

private:
  void normalize();

  /// Fraction addition (subtraction when \p Negate) with the denominators'
  /// gcd factored out before the cross-multiplication.
  Rational addSlow(const Rational &RHS, bool Negate) const;
  /// Cross-gcd multiplication: the result is born in lowest terms.
  Rational mulSlow(const Rational &RHS) const;

  BigInt Num;
  BigInt Den; // Always positive.
};

} // namespace cai

#endif // CAI_SUPPORT_RATIONAL_H
