//===- support/Hash.h - Hash-combination helpers ----------------*- C++ -*-===//
///
/// \file
/// Small fingerprinting helpers shared by the memoization key types
/// (conjunction fingerprints, LP constraint-system fingerprints).  The
/// mixing constants are the usual Fibonacci / FNV ones; none of this is
/// cryptographic -- QueryCache stores keys in full and compares with
/// operator==, so the hash only buys bucketing.
///
//===----------------------------------------------------------------------===//

#ifndef CAI_SUPPORT_HASH_H
#define CAI_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>

namespace cai {

/// Mixes \p V into the running hash \p H (boost::hash_combine's recipe
/// widened to 64 bits).
inline uint64_t hashCombine(uint64_t H, uint64_t V) {
  return H ^ (V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2));
}

/// Folds a range of hashable elements (anything with a hash() member) into
/// one fingerprint.  Order-sensitive, so callers canonicalize first.
template <typename Iter> uint64_t hashRange(Iter First, Iter Last) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (; First != Last; ++First)
    H = hashCombine(H, First->hash());
  return H;
}

} // namespace cai

#endif // CAI_SUPPORT_HASH_H
